"""Attack state machine and end-to-end adversary tests."""

import pytest

from repro.core.adversary import Http2SerializationAttack
from repro.core.phases import (
    AttackConfig,
    AttackPhase,
    full_attack_config,
    jitter_only_config,
    jitter_plus_throttle_config,
    uniform_delay_config,
)
from repro.experiments.session import SessionConfig, run_session
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology
from repro.website.isidewith import HTML_PATH


def test_config_validation():
    AttackConfig().validate()
    with pytest.raises(ValueError):
        AttackConfig(spacing_s=-1).validate()
    with pytest.raises(ValueError):
        AttackConfig(drop_rate=1.5).validate()
    with pytest.raises(ValueError):
        AttackConfig(trigger_request_index=0).validate()
    with pytest.raises(ValueError):
        AttackConfig(phase1_style="chaos").validate()


def test_config_factories():
    jitter = jitter_only_config(0.05)
    assert jitter.trigger_request_index is None
    assert jitter.throttle_bps_at_trigger is None
    throttled = jitter_plus_throttle_config(0.05, 8e8)
    assert throttled.throttle_bps_at_start == 8e8
    uniform = uniform_delay_config(0.05)
    assert uniform.uniform_delay_s == 0.05
    assert uniform.spacing_s == 0.0
    assert full_attack_config().trigger_request_index == 6


def test_attach_installs_phase1_policies():
    sim = Simulator()
    topo = StandardTopology(sim)
    attack = Http2SerializationAttack(sim, topo.middlebox, topo.trace,
                                      AttackConfig())
    attack.attach()
    assert attack.phase == AttackPhase.SPACING
    assert attack.controller.spacing_policy is not None


def test_attach_twice_rejected():
    sim = Simulator()
    topo = StandardTopology(sim)
    attack = Http2SerializationAttack(sim, topo.middlebox, topo.trace,
                                      AttackConfig())
    attack.attach()
    with pytest.raises(RuntimeError):
        attack.attach()


def test_full_pipeline_reaches_serialize_phase():
    result = run_session(SessionConfig(seed=3, attack=AttackConfig()))
    phases = result.report.phase_times
    assert set(phases) >= {"spacing", "disrupt", "serialize"}
    assert phases["spacing"] <= phases["disrupt"] <= phases["serialize"]


def test_trigger_fires_on_sixth_get():
    result = run_session(SessionConfig(seed=3, attack=AttackConfig()))
    # The 6th GET is the result HTML, requested ~0.5 s into the load.
    assert 0.4 <= result.report.phase_times["disrupt"] <= 1.0


def test_jitter_only_never_disrupts():
    result = run_session(SessionConfig(seed=3,
                                       attack=jitter_only_config(0.05)))
    assert "disrupt" not in result.report.phase_times


def test_report_contains_estimates_and_requests():
    result = run_session(SessionConfig(seed=3, attack=AttackConfig()))
    report = result.report
    assert report.requests_observed >= 6
    assert len(report.all_estimates) > 5
    assert all(e.end_time >= report.phase_times["serialize"]
               for e in report.window_estimates)


def test_attack_decodes_permutation_majority_of_loads():
    hits = 0
    loads = 6
    for seed in range(loads):
        result = run_session(SessionConfig(seed=seed, attack=AttackConfig()))
        sequence = [label for label in result.report.predicted_labels
                    if label != "html"]
        if sequence == list(result.permutation):
            hits += 1
    assert hits >= loads // 2


def test_attack_serializes_html_in_majority_of_loads():
    hits = sum(
        run_session(SessionConfig(seed=seed,
                                  attack=AttackConfig())).serialized(HTML_PATH)
        for seed in range(6))
    assert hits >= 3


def test_passive_observer_cannot_decode():
    """Control: without the attack, the size side-channel fails."""
    from repro.core.estimator import SizeEstimator
    from repro.core.predictor import ObjectPredictor
    from repro.experiments.session import isidewith_size_map
    hits = 0
    for seed in range(5):
        result = run_session(SessionConfig(seed=seed))
        estimates = SizeEstimator().estimate_from_trace(result.trace)
        size_map = isidewith_size_map(result.site)
        predictor = ObjectPredictor(size_map)
        parties = [p.label for p in predictor.predict_burst(
            estimates, [l for l in size_map.labels if l != "html"])]
        if parties == list(result.permutation):
            hits += 1
    assert hits <= 1


def test_single_release_config_clears_spacing():
    config = AttackConfig(release_spacing_after_request=8)
    result = run_session(SessionConfig(seed=3, attack=config))
    assert "released" in result.report.phase_times
    assert result.attack.controller.spacing_policy is None

"""Classifier, cross-validation and feature tests."""

import numpy as np
import pytest

from repro.analysis.crossval import confusion_matrix, cross_validate, stratified_folds
from repro.analysis.forest import DecisionTreeClassifier, RandomForestClassifier
from repro.analysis.knn import KNeighborsClassifier
from repro.analysis.nbayes import GaussianNBClassifier


def blobs(n_per_class=30, n_classes=3, n_features=4, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    X, y = [], []
    for c in range(n_classes):
        center = np.zeros(n_features)
        center[c % n_features] = 5.0
        X.append(center + spread * rng.standard_normal((n_per_class,
                                                        n_features)))
        y.extend([f"class-{c}"] * n_per_class)
    return np.vstack(X), np.array(y)


CLASSIFIERS = [
    lambda: KNeighborsClassifier(k=3),
    lambda: GaussianNBClassifier(),
    lambda: DecisionTreeClassifier(max_depth=6),
    lambda: RandomForestClassifier(n_trees=10, max_depth=6),
]


@pytest.mark.parametrize("factory", CLASSIFIERS)
def test_classifier_separates_blobs(factory):
    X, y = blobs()
    clf = factory().fit(X, y)
    assert clf.score(X, y) > 0.95


@pytest.mark.parametrize("factory", CLASSIFIERS)
def test_classifier_generalizes(factory):
    X_train, y_train = blobs(seed=1)
    X_test, y_test = blobs(seed=2)
    clf = factory().fit(X_train, y_train)
    assert clf.score(X_test, y_test) > 0.9


@pytest.mark.parametrize("factory", CLASSIFIERS)
def test_predict_before_fit_raises(factory):
    with pytest.raises(RuntimeError):
        factory().predict(np.zeros((1, 4)))


def test_knn_handles_constant_features():
    X = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0], [4.0, 7.0]])
    y = np.array(["a", "a", "b", "b"])
    clf = KNeighborsClassifier(k=1).fit(X, y)
    assert list(clf.predict(np.array([[1.1, 7.0], [3.9, 7.0]]))) == ["a", "b"]


def test_knn_k_validation():
    with pytest.raises(ValueError):
        KNeighborsClassifier(k=0)


def test_tree_pure_leaf_short_circuit():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array(["a", "a", "a"])
    clf = DecisionTreeClassifier().fit(X, y)
    assert list(clf.predict(X)) == ["a", "a", "a"]


def test_tree_depth_limit_respected():
    X, y = blobs(spread=3.0)
    stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
    deep = DecisionTreeClassifier(max_depth=10).fit(X, y)
    assert deep.score(X, y) >= stump.score(X, y)


def test_forest_is_deterministic_given_seed():
    X, y = blobs()
    a = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict(X)
    b = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict(X)
    assert (a == b).all()


def test_stratified_folds_balanced():
    y = np.array(["a"] * 10 + ["b"] * 10)
    folds = stratified_folds(y, n_folds=5, seed=0)
    assert len(folds) == 5
    for fold in folds:
        labels = y[fold]
        assert (labels == "a").sum() == 2
        assert (labels == "b").sum() == 2
    all_indices = np.concatenate(folds)
    assert sorted(all_indices) == list(range(20))


def test_cross_validate_reports_stats():
    X, y = blobs()
    stats = cross_validate(lambda: GaussianNBClassifier(), X, y, n_folds=3)
    assert stats["folds"] == 3
    assert 0.8 <= stats["mean_accuracy"] <= 1.0
    assert stats["min_accuracy"] <= stats["mean_accuracy"]


def test_confusion_matrix_diagonal_for_perfect():
    y = np.array(["a", "b", "a", "b"])
    labels, matrix = confusion_matrix(y, y)
    assert list(labels) == ["a", "b"]
    assert matrix[0, 0] == 2 and matrix[1, 1] == 2
    assert matrix[0, 1] == 0 and matrix[1, 0] == 0


def test_confusion_matrix_off_diagonal():
    labels, matrix = confusion_matrix(np.array(["a", "a"]),
                                      np.array(["a", "b"]))
    assert matrix[0, 1] == 1


def test_feature_extractor_fixed_length():
    from repro.analysis.features import TraceFeatureExtractor
    from repro.experiments.session import SessionConfig, run_session
    extractor = TraceFeatureExtractor()
    result = run_session(SessionConfig(seed=0))
    vector = extractor.extract(result.trace)
    assert vector.shape == (extractor.n_features,)
    assert vector[0] > 0  # total bytes


def test_feature_extractor_empty_trace():
    from repro.analysis.features import TraceFeatureExtractor
    from repro.simnet.trace import TraceRecorder
    extractor = TraceFeatureExtractor()
    vector = extractor.extract(TraceRecorder())
    assert vector.shape == (extractor.n_features,)
    assert not vector.any()


def test_known_size_rank_feature():
    from repro.analysis.features import known_size_rank_feature
    from repro.simnet.trace import TraceRecorder
    ranks = known_size_rank_feature(TraceRecorder(), [100, 200])
    assert list(ranks) == [0.0, 0.0]

"""Attack specs and agents: determinism and open-server symptoms.

Each agent drives the real TCP/TLS/HTTP/2 state machines through
simnet; these tests pin (a) the spec's validation/serialization
contract (it rides inside RunSpec cache keys), (b) per-kind resource
symptoms on an *unhardened* server, and (c) bit-for-bit determinism of
an attacked run.
"""

import pytest

from repro.attacks import ATTACK_KINDS, AttackSpec, make_agent
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.tcp.connection import TcpStack
from repro.website.isidewith import build_isidewith_site


def _attacked_server(spec: AttackSpec, *, seed: int = 3,
                     config: Http2ServerConfig = None, until: float = 8.0):
    sim = Simulator(seed=seed)
    topo = StandardTopology(sim, TopologyConfig())
    site = build_isidewith_site()
    server = Http2Server(sim, topo.server, site,
                         config or Http2ServerConfig(max_connections=4))
    stack = TcpStack(sim, topo.client)
    agent = make_agent(sim, stack, spec)
    agent.start()
    sim.run(until=until)
    return sim, server, agent


# -- spec contract ------------------------------------------------------------

class TestAttackSpec:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown attack kind"):
            AttackSpec("tcp_tarpit").validate()

    @pytest.mark.parametrize("field,value", [
        ("start_s", -1.0), ("duration_s", 0.0), ("connections", 0),
        ("streams", 0), ("rate_per_s", 0.0), ("pace_s", -0.5),
        ("target_path", ""),
    ])
    def test_bad_field_values_are_rejected(self, field, value):
        spec = AttackSpec("ping_flood", **{field: value})
        with pytest.raises(ValueError, match=field):
            spec.validate()

    def test_jsonable_roundtrip_is_identity(self):
        spec = AttackSpec("slow_post", start_s=1.0, duration_s=9.0,
                          connections=2, streams=40, rate_per_s=8.0,
                          pace_s=1.25, target_path="/p/1")
        assert AttackSpec.from_jsonable(spec.to_jsonable()) == spec

    def test_coerce_accepts_spec_dict_and_none(self):
        spec = AttackSpec("slow_headers")
        assert AttackSpec.coerce(spec) is spec
        assert AttackSpec.coerce(spec.to_jsonable()) == spec
        assert AttackSpec.coerce(None) is None
        with pytest.raises(TypeError):
            AttackSpec.coerce(["slow_headers"])

    def test_every_kind_has_an_agent(self):
        sim = Simulator(seed=1)
        topo = StandardTopology(sim, TopologyConfig())
        stack = TcpStack(sim, topo.client)
        for kind in ATTACK_KINDS:
            agent = make_agent(sim, stack, AttackSpec(kind))
            assert agent.spec.kind == kind


# -- open-server symptoms, per kind -------------------------------------------

def test_slow_preamble_fills_the_accept_table():
    spec = AttackSpec("slow_preamble", duration_s=6.0, connections=6,
                      pace_s=0.5)
    _sim, server, agent = _attacked_server(spec)
    # 4 slots, 6 silent dialers: the table fills and refusals begin.
    assert server.refused_connections > 0
    assert agent.dials >= 6
    # No dialer ever spoke TLS, so no HTTP/2 frames were exchanged.
    assert all(not c.tls.established for c in server.connections)


def test_slow_headers_exhausts_the_stream_table():
    spec = AttackSpec("slow_headers", duration_s=6.0, streams=140,
                      pace_s=0.02)
    _sim, server, agent = _attacked_server(spec)
    # Streams dangle open forever, so the 128-stream table fills.
    assert sum(c.refused_streams for c in server.connections) > 0
    assert agent.streams_opened >= 140


def test_slow_post_trickles_bodies_on_open_streams():
    spec = AttackSpec("slow_post", duration_s=6.0, streams=20, pace_s=1.0)
    _sim, _server, agent = _attacked_server(spec)
    # Opens (one frame each) plus at least a few trickle rounds.
    assert agent.streams_opened == 20
    assert agent.frames_sent > 20


def test_ping_flood_is_received_and_acked():
    spec = AttackSpec("ping_flood", duration_s=5.0, rate_per_s=60.0)
    _sim, server, agent = _attacked_server(spec)
    received = sum(c.pings_received for c in server.connections)
    assert received >= 200
    assert agent.frames_sent >= received


def test_settings_flood_is_counted():
    spec = AttackSpec("settings_flood", duration_s=5.0, rate_per_s=40.0)
    _sim, server, _agent = _attacked_server(spec)
    assert sum(c.settings_received for c in server.connections) >= 150


def test_stream_reset_churn_books_and_tears_down_streams():
    spec = AttackSpec("stream_reset_churn", duration_s=5.0, rate_per_s=40.0)
    _sim, server, agent = _attacked_server(spec)
    resets = sum(c.resets_received for c in server.connections)
    assert resets >= 150
    # Reset streams do not accumulate: the per-conn tracking list drains.
    assert all(len(c.attack_streams) <= 1 for c in agent.conns)


# -- agent mechanics ----------------------------------------------------------

def test_start_is_idempotent():
    sim = Simulator(seed=1)
    topo = StandardTopology(sim, TopologyConfig())
    stack = TcpStack(sim, topo.client)
    agent = make_agent(sim, stack, AttackSpec("slow_preamble",
                                              duration_s=2.0,
                                              connections=3, pace_s=0.5))
    agent.start()
    agent.start()
    sim.run(until=1.0)
    assert agent.dials == 3


def test_agent_stops_applying_pressure_after_expiry():
    spec = AttackSpec("ping_flood", duration_s=2.0, rate_per_s=50.0)
    sim, _server, agent = _attacked_server(spec, until=3.0)
    assert agent.expired
    sent_at_expiry = agent.frames_sent
    sim.run(until=8.0)
    assert agent.frames_sent == sent_at_expiry


def test_attacked_run_is_deterministic():
    def run_once():
        spec = AttackSpec("stream_reset_churn", duration_s=4.0,
                          rate_per_s=30.0)
        sim, server, agent = _attacked_server(spec, until=6.0)
        return (sim.processed_events, agent.dials, agent.frames_sent,
                agent.streams_opened,
                sum(c.resets_received for c in server.connections))

    assert run_once() == run_once()

"""Benchmark layer tests: snapshot schema, determinism, compare gating,
and the __slots__ guard on hot-path objects."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (SCHEMA_VERSION, BenchSnapshot, compare_snapshots,
                         measure, scale_by_name, workloads)
from repro.bench.compare import CompareUsageError
from repro.bench.snapshot import SnapshotError, load_location, snapshot_path
from repro.cli import main
from repro.http2.frames import DataFrame, HeadersFrame
from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet
from repro.simnet.trace import CapturedPacket, TraceRecorder
from repro.tls.record import TlsRecord

REPO_ROOT = Path(__file__).resolve().parents[1]
SMOKE = scale_by_name("smoke")


def _snapshot(topic="event_heap", events=100, eps=1000.0, version=1,
              scale="smoke", **extra):
    metrics = {"events": events, "events_per_second": eps,
               "wall_time_s": events / eps, "peak_tracemalloc_kb": 1.0,
               "allocated_blocks": 10, "peak_rss_kb": 100.0, "repeats": 1}
    metrics.update(extra)
    return BenchSnapshot(topic=topic, workload_version=version, scale=scale,
                         metrics=metrics)


# -- snapshot schema -------------------------------------------------------

def test_snapshot_roundtrip(tmp_path):
    snap = _snapshot(environment_marker=3.0)
    path = snap.write(str(tmp_path))
    assert path == snapshot_path(str(tmp_path), "event_heap")
    loaded = BenchSnapshot.read(path)
    assert loaded.to_dict() == snap.to_dict()
    assert loaded.schema_version == SCHEMA_VERSION


def test_snapshot_rejects_bad_schema(tmp_path):
    data = _snapshot().to_dict()
    data["schema_version"] = SCHEMA_VERSION + 99
    with pytest.raises(SnapshotError):
        BenchSnapshot.from_dict(data)
    data = _snapshot().to_dict()
    del data["metrics"]["events"]
    with pytest.raises(SnapshotError):
        BenchSnapshot.from_dict(data)


def test_load_location_handles_dir_and_file(tmp_path):
    a = _snapshot("event_heap")
    b = _snapshot("hpack")
    a.write(str(tmp_path))
    path_b = b.write(str(tmp_path))
    by_topic = load_location(str(tmp_path))
    assert sorted(by_topic) == ["event_heap", "hpack"]
    assert load_location(path_b)["hpack"].topic == "hpack"
    with pytest.raises(SnapshotError):
        load_location(str(tmp_path / "missing"))


def test_committed_snapshots_match_schema_and_suite():
    """The repo-root trajectory and the CI smoke baselines stay loadable
    and cover every suite topic."""
    suite_topics = sorted(w.topic for w in workloads())
    for location, scale in ((REPO_ROOT, "full"),
                            (REPO_ROOT / "benchmarks" / "baselines", "smoke")):
        by_topic = load_location(str(location))
        assert sorted(by_topic) == suite_topics
        for snap in by_topic.values():
            assert snap.schema_version == SCHEMA_VERSION
            assert snap.scale == scale
            assert snap.metrics["events"] > 0


# -- determinism -----------------------------------------------------------

def test_workload_counts_match_committed_baselines():
    """Every workload reproduces the committed smoke event count."""
    baselines = load_location(str(REPO_ROOT / "benchmarks" / "baselines"))
    for workload in workloads():
        outcome = workload.run(SMOKE)
        # A workload may return (events, aux_metrics); only the event
        # count is part of the determinism contract.
        count = outcome[0] if isinstance(outcome, tuple) else outcome
        assert count == baselines[workload.topic].metrics["events"], \
            workload.topic


def test_workload_counts_deterministic_across_processes():
    """A fresh interpreter reproduces this process's event counts."""
    script = (
        "from repro.bench import scale_by_name, workloads\n"
        "s = scale_by_name('smoke')\n"
        "print({w.topic: w.run(s) for w in workloads()\n"
        "       if w.topic in ('hpack', 'tcp_reassembly')})\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    out = subprocess.run([sys.executable, "-c", script], env=env,
                         capture_output=True, text=True, check=True)
    child = eval(out.stdout.strip())  # dict literal from our own script
    here = {w.topic: w.run(SMOKE) for w in workloads()
            if w.topic in ("hpack", "tcp_reassembly")}
    assert child == here


def test_measure_rejects_nondeterministic_workload():
    counts = iter([10, 11])

    def flaky():
        return next(counts)

    with pytest.raises(RuntimeError):
        measure(flaky, repeats=2)


# -- compare gating --------------------------------------------------------

def test_compare_clean():
    old = {"a": _snapshot("a")}
    new = {"a": _snapshot("a")}
    _deltas, problems, code = compare_snapshots(old, new)
    assert code == 0 and not problems


def test_compare_flags_count_mismatch_even_in_advisory_mode():
    old = {"a": _snapshot("a", events=100)}
    new = {"a": _snapshot("a", events=101)}
    _d, problems, code = compare_snapshots(old, new, advisory_time=True)
    assert code == 1
    assert any("count" in p for p in problems)


def test_compare_flags_time_regression_unless_advisory():
    old = {"a": _snapshot("a", eps=1000.0)}
    new = {"a": _snapshot("a", eps=600.0)}
    _d, _p, code = compare_snapshots(old, new, threshold=0.25)
    assert code == 1
    _d, _p, code = compare_snapshots(old, new, threshold=0.25,
                                     advisory_time=True)
    assert code == 0
    _d, _p, code = compare_snapshots(old, new, threshold=0.5)
    assert code == 0


def test_compare_flags_missing_topic():
    old = {"a": _snapshot("a"), "b": _snapshot("b")}
    new = {"a": _snapshot("a")}
    _d, _p, code = compare_snapshots(old, new)
    assert code == 1


def test_compare_rejects_scale_and_version_mismatch():
    with pytest.raises(CompareUsageError):
        compare_snapshots({"a": _snapshot("a", scale="full")},
                          {"a": _snapshot("a", scale="smoke")})
    with pytest.raises(CompareUsageError):
        compare_snapshots({"a": _snapshot("a", version=1)},
                          {"a": _snapshot("a", version=2)})


# -- CLI -------------------------------------------------------------------

def test_cli_bench_run_and_compare_exit_codes(tmp_path):
    out = tmp_path / "run"
    code = main(["bench", "--topics", "hpack", "--scale", "smoke",
                 "--repeats", "1", "--out-dir", str(out)])
    assert code == 0
    assert (out / "BENCH_hpack.json").exists()

    assert main(["bench", "--compare", str(out), str(out)]) == 0

    # Inject a regression: slow the NEW snapshot far past the threshold.
    slow = tmp_path / "slow"
    data = json.loads((out / "BENCH_hpack.json").read_text())
    data["metrics"]["events_per_second"] *= 0.5
    data["metrics"]["wall_time_s"] *= 2
    slow.mkdir()
    (slow / "BENCH_hpack.json").write_text(json.dumps(data))
    assert main(["bench", "--compare", str(out), str(slow)]) == 1
    assert main(["bench", "--compare", str(out), str(slow),
                 "--advisory-time"]) == 0

    # Tampered event count fails even in advisory mode.
    bad = tmp_path / "bad"
    data = json.loads((out / "BENCH_hpack.json").read_text())
    data["metrics"]["events"] += 1
    bad.mkdir()
    (bad / "BENCH_hpack.json").write_text(json.dumps(data))
    assert main(["bench", "--compare", str(out), str(bad),
                 "--advisory-time"]) == 1

    # Usage errors: missing location, unknown topic/scale.
    assert main(["bench", "--compare", str(out),
                 str(tmp_path / "nope")]) == 2
    assert main(["bench", "--topics", "nope", "--scale", "smoke",
                 "--out-dir", str(out)]) == 2
    assert main(["bench", "--scale", "nope", "--out-dir", str(out)]) == 2


def test_cli_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for workload in workloads():
        assert workload.topic in out


# -- __slots__ guard -------------------------------------------------------

def test_hot_path_objects_reject_stray_attributes():
    """The slots optimization also guards against typo'd attributes
    silently creating per-instance dicts on hot-path objects."""
    sim = Simulator(seed=0)
    handle = sim.schedule(0.0, lambda: None)
    record = TlsRecord(content_type=23, payload_len=10)
    frame_cases = [
        handle,
        record,
        Packet(src="c", dst="s", size=100),
        DataFrame(stream_id=1, length=10),
        HeadersFrame(stream_id=1, header_block_len=10),
        CapturedPacket(time=0.0, direction="c2s", view=None, dropped=False),
        TraceRecorder(),
    ]
    for obj in frame_cases:
        # frozen+slots dataclasses on 3.10/3.11 raise TypeError instead
        # of AttributeError for unknown names (fixed upstream in 3.12);
        # either way the stray write is rejected.
        with pytest.raises((AttributeError, TypeError)):
            obj.definitely_not_a_field = 1
    for obj in (handle, record):
        assert not hasattr(obj, "__dict__")

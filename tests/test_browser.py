"""Browser behaviour tests over the full stack."""

import pytest

from repro.browser.browser import Browser, BrowserConfig
from repro.http2.client import Http2Client, Http2ClientConfig
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.simnet.engine import Simulator
from repro.simnet.middlebox import SERVER_TO_CLIENT, WindowedDropPolicy
from repro.simnet.topology import StandardTopology
from repro.tcp.connection import TcpConfig
from repro.website.isidewith import HTML_PATH, build_isidewith_site


class BrowserRig:
    def __init__(self, seed=0, browser_config=None, warm=None):
        self.sim = Simulator(seed=seed)
        self.topo = StandardTopology(self.sim)
        self.site = build_isidewith_site()
        self.server = Http2Server(self.sim, self.topo.server, self.site,
                                  Http2ServerConfig(),
                                  tcp_config=TcpConfig(deliver_duplicates=True,
                                                       initial_ssthresh_bytes=48_000))
        self.client = Http2Client(self.sim, self.topo.client, "server",
                                  config=Http2ClientConfig(
                                      authority=self.site.authority))
        plan = self.site.plan_load(self.sim.rng("plan"), warm=warm)
        self.plan = plan
        self.browser = Browser(self.sim, self.client, plan,
                               browser_config or BrowserConfig())

    def run_to_completion(self, limit=40.0):
        self.browser.start()
        while self.browser.result is None and self.sim.now < limit:
            self.sim.run(until=self.sim.now + 0.5)
        self.sim.run(until=self.sim.now + 0.3)
        return self.browser.result


def test_clean_load_succeeds():
    result = BrowserRig(seed=1).run_to_completion()
    assert result.success and not result.broken
    assert result.resets == 0


def test_all_needed_paths_completed():
    rig = BrowserRig(seed=2)
    result = rig.run_to_completion()
    assert set(result.completed_paths) == set(rig.plan.uncached_paths())


def test_request_phases_in_order():
    rig = BrowserRig(seed=3, warm=False)
    result = rig.run_to_completion()
    times = {event.path: event.time for event in result.requests}
    html_time = times[HTML_PATH]
    for request in rig.plan.initial:
        assert times[request.path] < html_time
    for request in rig.plan.scripted:
        assert times[request.path] > html_time


def test_images_requested_in_permutation_order():
    rig = BrowserRig(seed=4)
    result = rig.run_to_completion()
    image_events = [e for e in result.requests if "emblem" in e.path]
    expected = [f"/img/emblem-{p}.png" for p in result.permutation]
    assert [e.path for e in image_events] == expected


def test_warm_load_skips_cached_aux():
    rig = BrowserRig(seed=5, warm=True)
    result = rig.run_to_completion()
    requested = {event.path for event in result.requests}
    assert not any("icon" in path or "banner" in path for path in requested)
    assert sum(1 for p in requested if "emblem" in p) == 8


def test_speculative_requests_fire_on_html_bytes():
    rig = BrowserRig(seed=6, warm=False)
    result = rig.run_to_completion()
    times = {event.path: event.time for event in result.requests}
    html_time = times[HTML_PATH]
    head_paths = [r.path for r in rig.plan.head_resources]
    # Head resources go out after the HTML request but before the
    # scripted phase (they are parse-triggered, not JS-triggered).
    first_image = min(times[r.path] for r in rig.plan.scripted)
    assert all(html_time < times[p] < first_image for p in head_paths)


def test_drop_burst_triggers_reset_and_rerequest():
    rig = BrowserRig(seed=7, warm=False)
    # An un-ending 100% drop of application data starting mid-load.
    rig.topo.middlebox.add_policy(WindowedDropPolicy(
        rig.sim, rate=0.95, direction=SERVER_TO_CLIENT,
        start_at=0.55, end_at=5.2))
    result = rig.run_to_completion()
    assert result.resets >= 1
    assert any(event.is_rerequest for event in result.requests)


def test_unrequested_objects_not_rerequested_after_reset():
    rig = BrowserRig(seed=8, warm=False)
    rig.topo.middlebox.add_policy(WindowedDropPolicy(
        rig.sim, rate=0.95, direction=SERVER_TO_CLIENT,
        start_at=0.55, end_at=5.2))
    result = rig.run_to_completion()
    rerequests = [e for e in result.requests if e.is_rerequest]
    first_time = {e.path: e.time for e in result.requests
                  if not e.is_rerequest}
    for event in rerequests:
        assert event.path in first_time
        assert first_time[event.path] < event.time


def test_permanent_blackout_breaks_load():
    rig = BrowserRig(seed=9, browser_config=BrowserConfig(page_timeout_s=25.0))
    rig.topo.middlebox.add_policy(WindowedDropPolicy(
        rig.sim, rate=1.0, direction=SERVER_TO_CLIENT,
        start_at=0.55, end_at=1e9))
    result = rig.run_to_completion(limit=30.0)
    assert result is not None
    assert result.broken and not result.success


def test_page_timeout_enforced():
    rig = BrowserRig(seed=10, browser_config=BrowserConfig(
        page_timeout_s=0.2))
    result = rig.run_to_completion(limit=5.0)
    assert result.broken
    assert result.duration_s == pytest.approx(0.2, abs=0.05)


def test_deterministic_given_seed():
    first = BrowserRig(seed=11).run_to_completion()
    second = BrowserRig(seed=11).run_to_completion()
    assert [e.path for e in first.requests] == [e.path for e in second.requests]
    assert first.duration_s == second.duration_s

"""The seeded chaos harness: deterministic generation, clean cells on
the in-tree stack, failure minimization down to a written reproducer,
and the CLI's exit-code contract."""

import json

import pytest

from repro.cli import main
from repro.experiments.chaos import (
    ChaosSite,
    run_cell,
    run_chaos,
    shrink_failure,
    write_reproducer,
    ChaosFinding,
)
from repro.experiments.runner import RunCache
from repro.http2 import flow_control
from repro.invariants import (
    CHAOS_DEFENSES,
    ChaosSpec,
    generate_spec,
    shrink_candidates,
)


# -- generation -------------------------------------------------------------

def test_generate_spec_is_deterministic():
    assert generate_spec(0, 3) == generate_spec(0, 3)
    assert generate_spec(0, 3) != generate_spec(0, 4)
    assert generate_spec(0, 3) != generate_spec(1, 3)


def test_spec_json_roundtrip():
    spec = generate_spec(5, 2)
    assert ChaosSpec.from_jsonable(spec.to_jsonable()) == spec
    # And it survives an actual JSON encode/decode (the reproducer path).
    assert ChaosSpec.from_jsonable(
        json.loads(json.dumps(spec.to_jsonable()))) == spec


def test_generated_specs_are_valid():
    for i in range(20):
        spec = generate_spec(0, i)
        assert spec.defense in CHAOS_DEFENSES
        assert spec.html_size >= 2_000
        assert all(size >= 400 for size in spec.object_sizes)
        for event in spec.fault_events:
            assert event["at_s"] >= 0


def test_chaos_site_plans_cover_every_object():
    site = ChaosSite(10_000, (500, 600, 700))
    import random
    plan = site.plan_load(random.Random(0))
    assert sorted(plan.uncached_paths()) == sorted(site.objects)


# -- cells ------------------------------------------------------------------

def test_chaos_cells_run_clean_on_the_intree_stack():
    for i in range(3):
        spec = generate_spec(0, i)
        metrics = run_cell(spec.seed, spec.to_jsonable())
        assert metrics["violation"] is None
        assert metrics["ok"]


def test_run_chaos_campaign_clean():
    result = run_chaos(seeds=2, master_seed=0, jobs=1,
                       cache=RunCache(enabled=False))
    assert result.clean
    assert result.findings == [] and result.crashes == []


# -- shrinking --------------------------------------------------------------

def test_shrink_candidates_reduce_monotonically():
    spec = generate_spec(0, 1)
    for description, candidate in shrink_candidates(spec):
        assert isinstance(description, str) and description
        smaller = (len(candidate.fault_events) < len(spec.fault_events)
                   or len(candidate.object_sizes) < len(spec.object_sizes)
                   or (spec.attack and not candidate.attack)
                   or candidate.defense != spec.defense
                   or candidate.natural_jitter_mean_s
                   < spec.natural_jitter_mean_s
                   or candidate.natural_loss_rate < spec.natural_loss_rate
                   or candidate.max_reconnects < spec.max_reconnects
                   or candidate.scheduler != spec.scheduler)
        assert smaller


def test_broken_branch_is_caught_shrunk_and_written(monkeypatch, tmp_path):
    """End to end: a deliberately broken flow-control branch trips the
    monitor, the shrinker minimizes the failing spec, and the minimized
    reproducer (a) is written to disk and (b) still reproduces."""
    orig = flow_control.ReceiveWindowManager.on_data

    def overgrant(self, nbytes):
        increment = orig(self, nbytes)
        return increment + 70_000 if increment else increment

    monkeypatch.setattr(flow_control.ReceiveWindowManager, "on_data",
                        overgrant)

    spec = generate_spec(0, 4)
    metrics = run_cell(spec.seed, spec.to_jsonable())
    assert metrics["violation"] is not None
    code = metrics["violation"]["code"]

    minimized, steps, runs = shrink_failure(spec, code, budget=60)
    assert runs <= 60
    assert len(minimized.fault_events) <= len(spec.fault_events)
    assert len(minimized.object_sizes) <= len(spec.object_sizes)
    # The minimized spec still reproduces the same violation.
    again = run_cell(minimized.seed, minimized.to_jsonable())
    assert again["violation"] is not None
    assert again["violation"]["code"] == code

    finding = ChaosFinding(index=0, violation=metrics["violation"],
                           spec=spec, minimized=minimized,
                           shrink_steps=steps, shrink_runs=runs)
    path = write_reproducer(tmp_path, finding)
    saved = json.loads(path.read_text(encoding="utf-8"))
    assert saved["violation"]["code"] == code
    assert ChaosSpec.from_jsonable(saved["spec"]) == minimized


# -- CLI exit codes ---------------------------------------------------------

def test_cli_rejects_nonpositive_seeds(capsys):
    assert main(["chaos", "--seeds", "0"]) == 2
    assert "--seeds" in capsys.readouterr().err


def test_cli_rejects_nonpositive_budget(capsys):
    assert main(["chaos", "--budget", "-1"]) == 2
    assert "--budget" in capsys.readouterr().err


def test_cli_rejects_non_integer_seed():
    with pytest.raises(SystemExit) as excinfo:
        main(["chaos", "--seed", "not-an-int"])
    assert excinfo.value.code == 2


def test_cli_rejects_invalid_fault_plan(tmp_path, capsys):
    bad = tmp_path / "plan.json"
    bad.write_text('{"kind": "link_down"}', encoding="utf-8")
    assert main(["chaos", "--plan", str(bad)]) == 2
    assert "fault plan" in capsys.readouterr().err

    bad.write_text("not json", encoding="utf-8")
    assert main(["chaos", "--plan", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "not valid JSON" in err

    bad.write_text('[{"kind": "warp-core-breach", "at_s": 1.0}]',
                   encoding="utf-8")
    assert main(["chaos", "--plan", str(bad)]) == 2
    assert "warp-core-breach" in capsys.readouterr().err


def test_cli_rejects_invalid_replay_spec(tmp_path, capsys):
    bad = tmp_path / "spec.json"
    bad.write_text('{"seed": 1}', encoding="utf-8")
    assert main(["chaos", "--replay", str(bad)]) == 2
    assert "chaos spec" in capsys.readouterr().err


def test_cli_replays_a_clean_spec(tmp_path, capsys):
    spec = generate_spec(0, 0)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({"spec": spec.to_jsonable()}),
                    encoding="utf-8")
    assert main(["chaos", "--replay", str(path)]) == 0
    assert "all invariants held" in capsys.readouterr().out

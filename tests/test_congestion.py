"""Reno congestion control unit tests."""

from repro.tcp.congestion import RenoCongestionControl


def cc(**kwargs):
    return RenoCongestionControl(mss=1000, init_cwnd_segments=10, **kwargs)


def test_initial_window():
    control = cc()
    assert control.cwnd == 10_000
    assert control.in_slow_start


def test_slow_start_grows_per_ack():
    control = cc()
    control.on_ack(1000)
    assert control.cwnd == 11_000


def test_slow_start_growth_capped_at_mss_per_ack():
    control = cc()
    control.on_ack(50_000)
    assert control.cwnd == 11_000


def test_congestion_avoidance_linear():
    control = cc(initial_ssthresh=5_000)
    assert not control.in_slow_start
    before = control.cwnd
    control.on_ack(1000)
    assert control.cwnd == before + 1000 * 1000 // before


def test_cwnd_cap():
    control = RenoCongestionControl(mss=1000, init_cwnd_segments=10,
                                    cwnd_cap_bytes=12_000)
    for _ in range(10):
        control.on_ack(1000)
    assert control.cwnd == 12_000


def test_fast_retransmit_halves_and_enters_recovery():
    control = cc()
    control.on_fast_retransmit(flight_size=20_000)
    assert control.ssthresh == 10_000
    assert control.cwnd == 10_000 + 3_000
    assert control.in_recovery
    assert control.stats.fast_retransmits == 1


def test_recovery_inflation_and_exit():
    control = cc()
    control.on_fast_retransmit(flight_size=20_000)
    control.on_dup_ack_in_recovery()
    assert control.cwnd == 14_000
    control.on_recovery_exit()
    assert not control.in_recovery
    assert control.cwnd == control.ssthresh
    assert control.stats.recoveries_completed == 1


def test_timeout_collapses_to_one_segment():
    control = cc()
    control.on_timeout(flight_size=20_000)
    assert control.cwnd == 1000
    assert control.ssthresh == 10_000
    assert control.in_slow_start
    assert control.stats.timeouts == 1


def test_ssthresh_floor_two_segments():
    control = cc()
    control.on_timeout(flight_size=1000)
    assert control.ssthresh == 2000


def test_idle_restart_shrinks_but_never_grows():
    control = cc()
    for _ in range(20):
        control.on_ack(1000)
    grown = control.cwnd
    control.on_idle_restart()
    assert control.cwnd == 10_000 < grown
    control.on_idle_restart()
    assert control.cwnd == 10_000


def test_undo_restores_saved_state():
    control = cc()
    control.on_timeout(flight_size=20_000)
    control.undo(cwnd=18_000, ssthresh=30_000)
    assert control.cwnd == 18_000
    assert control.ssthresh == 30_000
    assert control.stats.spurious_undos == 1


def test_zero_ack_is_noop():
    control = cc()
    control.on_ack(0)
    assert control.cwnd == 10_000

"""Core adversary component unit tests: wire predicates, observer,
controller, planner, estimator, predictor, metrics."""

import pytest

from repro.core.controller import NetworkController
from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.metrics import (
    degree_of_multiplexing,
    mean_degree,
    object_serialized,
    serve_spans,
)
from repro.core.observer import TrafficMonitor
from repro.core.planner import drain_time_s, required_spacing_s, spacing_schedule
from repro.core.predictor import ObjectPredictor, SizeIdentityMap
from repro.core.wire import (
    REQUEST_RECORD_MIN_WIRE,
    carries_request,
    carries_request_any,
)
from repro.http2.server import TxEntry
from repro.simnet.engine import Simulator
from repro.simnet.middlebox import CLIENT_TO_SERVER, SERVER_TO_CLIENT
from repro.simnet.packet import RecordInfo, TcpWireView, WireView
from repro.simnet.trace import CompletedRecord


def view(records=(), retx=False, payload=100):
    return WireView(pid=1, src="client", dst="server", size=54 + payload,
                    tcp=TcpWireView(src_port=1, dst_port=443, seq=0, ack=0,
                                    payload_len=payload),
                    records=tuple(records), is_retransmit=retx)


def record_info(wire_len=120, content_type=23, start=True, end=True):
    return RecordInfo(record_id=1, content_type=content_type,
                      record_wire_len=wire_len, bytes_in_packet=wire_len,
                      is_start=start, is_end=end)


# -- wire predicates ----------------------------------------------------------

def test_request_detection_by_size():
    assert carries_request(view([record_info(wire_len=90)]))
    assert not carries_request(view([record_info(wire_len=34)]))


def test_request_detection_excludes_retransmits():
    v = view([record_info(wire_len=90)], retx=True)
    assert not carries_request(v)
    assert carries_request_any(v)


def test_request_detection_requires_record_start():
    v = view([record_info(wire_len=2000, start=False, end=True)])
    assert not carries_request(v)


def test_request_detection_ignores_handshake():
    v = view([record_info(wire_len=500, content_type=22)])
    assert not carries_request(v)


# -- observer -------------------------------------------------------------------

def test_monitor_counts_requests_and_skips_preface():
    sim = Simulator()
    monitor = TrafficMonitor(sim, skip_first=1)
    for _ in range(3):
        monitor(sim.now, CLIENT_TO_SERVER, view([record_info(90)]), False)
    assert monitor.request_count == 2  # first was the preface


def test_monitor_index_trigger_fires_once():
    sim = Simulator()
    monitor = TrafficMonitor(sim, skip_first=0)
    fired = []
    monitor.on_request_index(2, fired.append)
    for _ in range(4):
        monitor(sim.now, CLIENT_TO_SERVER, view([record_info(90)]), False)
    assert len(fired) == 1
    assert fired[0].index == 2


def test_monitor_trigger_on_past_index_rejected():
    sim = Simulator()
    monitor = TrafficMonitor(sim, skip_first=0)
    monitor(sim.now, CLIENT_TO_SERVER, view([record_info(90)]), False)
    with pytest.raises(ValueError):
        monitor.on_request_index(1, lambda s: None)


def test_monitor_ignores_dropped_and_s2c():
    sim = Simulator()
    monitor = TrafficMonitor(sim, skip_first=0)
    monitor(sim.now, CLIENT_TO_SERVER, view([record_info(90)]), True)
    monitor(sim.now, SERVER_TO_CLIENT, view([record_info(90)]), False)
    assert monitor.request_count == 0
    assert monitor.app_packets_s2c == 1


def test_monitor_counts_control_records():
    sim = Simulator()
    monitor = TrafficMonitor(sim, skip_first=0)
    seen = []
    monitor.on_every_control(seen.append)
    monitor(sim.now, CLIENT_TO_SERVER, view([record_info(34)]), False)
    assert monitor.control_count == 1 and len(seen) == 1


# -- controller -----------------------------------------------------------------

def test_controller_policy_lifecycle():
    from repro.simnet.middlebox import Middlebox
    sim = Simulator()
    mbox = Middlebox(sim)
    controller = NetworkController(sim, mbox)
    controller.set_request_spacing(0.05)
    controller.set_bandwidth(1e6)
    controller.drop_application_packets(0.5, 1.0)
    controller.set_uniform_delay(0.01)
    controller.set_request_jitter(0.05)
    assert len(mbox.policies) == 5
    controller.clear_all()
    assert mbox.policies == ()


def test_controller_replaces_spacing_and_keeps_ramp():
    from repro.simnet.middlebox import Middlebox
    sim = Simulator()
    mbox = Middlebox(sim)
    controller = NetworkController(sim, mbox)
    first = controller.set_request_spacing(0.05)
    first._last_release = 3.0
    second = controller.set_request_spacing(0.08)
    assert second._last_release == 3.0
    assert len(mbox.policies) == 1


def test_controller_hold_first_until():
    from repro.simnet.middlebox import Middlebox
    sim = Simulator()
    mbox = Middlebox(sim)
    controller = NetworkController(sim, mbox)
    policy = controller.set_request_spacing(0.08, initial_gap_s=0.3,
                                            initial_count=1,
                                            hold_first_until=2.0)
    assert policy._last_release == pytest.approx(1.7)


# -- planner -----------------------------------------------------------------------

def test_drain_time_grows_with_size():
    small = drain_time_s(5_000, rtt_s=0.03)
    large = drain_time_s(200_000, rtt_s=0.03)
    assert large > small


def test_required_spacing_covers_paper_objects():
    # A ~10 KB object at ~30 ms RTT needs several tens of milliseconds:
    # consistent with the paper's choice of 50-80 ms.
    spacing = required_spacing_s(9_500, rtt_s=0.03)
    assert 0.04 <= spacing <= 0.12


def test_spacing_schedule_matches_paper_rule():
    holds = spacing_schedule([0.0004, 0.002, 0.0003], target_gap_s=0.05)
    assert holds[0] == 0.0
    assert holds[1] == pytest.approx(0.05 - 0.0004)
    assert holds[2] == pytest.approx(0.1 - 0.0024)
    assert all(h >= 0 for h in holds)


def test_spacing_schedule_never_negative():
    holds = spacing_schedule([10.0, 10.0], target_gap_s=0.05)
    assert holds == [0.0, 0.0, 0.0]


# -- estimator -------------------------------------------------------------------

def completed(wire_len, start, end, rid=None, ct=23):
    completed._n = getattr(completed, "_n", 0) + 1
    return CompletedRecord(record_id=rid or completed._n, content_type=ct,
                           wire_len=wire_len, start_time=start, end_time=end,
                           direction=SERVER_TO_CLIENT,
                           final_packet_size=wire_len + 54)


def test_estimator_sums_between_delimiters():
    est = SizeEstimator()
    records = [completed(1400, 0.0, 0.0), completed(1400, 0.001, 0.001),
               completed(700, 0.002, 0.002),
               completed(1400, 0.003, 0.003), completed(200, 0.004, 0.004)]
    sizes = [e.size for e in est.estimate_from_records(records)]
    assert sizes == [(1400 - 30) * 2 + 670, 1370 + 170]


def test_estimator_skips_control_records():
    est = SizeEstimator()
    records = [completed(34, 0.0, 0.0), completed(1400, 0.001, 0.001),
               completed(500, 0.002, 0.002), completed(30, 0.003, 0.003)]
    estimates = est.estimate_from_records(records)
    assert len(estimates) == 1
    assert estimates[0].size == 1370 + 470


def test_estimator_time_gap_delimits():
    est = SizeEstimator(time_gap_delimiter_s=0.05)
    records = [completed(1400, 0.0, 0.0),
               completed(1400, 0.2, 0.2), completed(300, 0.201, 0.201)]
    sizes = [e.size for e in est.estimate_from_records(records)]
    assert sizes == [1370, 1370 + 270]


def test_estimator_tiny_tail_record_lost():
    """A sub-control-size final record is invisible to the estimator --
    the object's estimate falls short by the tail.  Documents a real
    limitation of the delimiter side-channel."""
    est = SizeEstimator()
    records = [completed(1400, 0.0, 0.0), completed(31, 0.001, 0.001)]
    estimates = est.estimate_from_records(records)
    assert estimates[0].size == 1370  # the 1-byte tail was skipped


def test_estimator_trailing_run_emitted():
    est = SizeEstimator()
    records = [completed(1400, 0.0, 0.0)]
    estimates = est.estimate_from_records(records)
    assert len(estimates) == 1 and estimates[0].size == 1370


def test_estimate_matches_tolerance():
    estimate = ObjectEstimate(size=10_000, start_time=0, end_time=0,
                              n_records=8)
    assert estimate.matches(10_300, tolerance=400)
    assert not estimate.matches(10_500, tolerance=400)


# -- predictor --------------------------------------------------------------------

def estimate(size, t=0.0):
    return ObjectEstimate(size=size, start_time=t, end_time=t, n_records=1)


def test_size_map_identifies_within_tolerance():
    size_map = SizeIdentityMap({10_000: "a", 20_000: "b"})
    assert size_map.identify(10_300) == "a"
    assert size_map.identify(19_700) == "b"
    assert size_map.identify(15_000) is None


def test_size_map_rejects_ambiguous_sizes():
    with pytest.raises(ValueError):
        SizeIdentityMap({10_000: "a", 10_500: "b"}, tolerance=400)


def test_predict_dedupes_repeats():
    size_map = SizeIdentityMap({10_000: "a", 20_000: "b"})
    predictor = ObjectPredictor(size_map)
    labels = [p.label for p in predictor.predict(
        [estimate(10_000), estimate(10_050), estimate(20_000)])]
    assert labels == ["a", "b"]


def test_predict_burst_prefers_dense_window():
    size_map = SizeIdentityMap({10_000: "a", 20_000: "b", 30_000: "c"})
    predictor = ObjectPredictor(size_map)
    estimates = [
        estimate(10_000, t=0.0),           # isolated spurious hit
        estimate(10_000, t=5.0), estimate(20_000, t=5.1),
        estimate(30_000, t=5.2),           # the real burst
    ]
    labels = [p.label for p in predictor.predict_burst(
        estimates, ["a", "b", "c"], window_s=1.0)]
    assert labels == ["a", "b", "c"]


def test_predict_burst_empty_when_nothing_matches():
    size_map = SizeIdentityMap({10_000: "a"})
    predictor = ObjectPredictor(size_map)
    assert predictor.predict_burst([estimate(50_000)], ["a"]) == []


def test_predict_after_anchor():
    size_map = SizeIdentityMap({9_500: "html", 20_000: "b"})
    predictor = ObjectPredictor(size_map)
    estimates = [estimate(20_000, 0.0), estimate(9_500, 1.0),
                 estimate(20_000, 2.0)]
    labels = [p.label for p in predictor.predict_after_anchor(estimates,
                                                              "html")]
    assert labels == ["html", "b"]


# -- metrics --------------------------------------------------------------------------

def tx(path, serve_id, offset, length, t=0.0, end=False, dup=False):
    return TxEntry(time=t, stream_id=serve_id, object_path=path,
                   serve_id=serve_id, tcp_offset=offset, length=length,
                   is_data=True, end_stream=end, duplicate=dup)


def test_degree_zero_for_contiguous_object():
    log = [tx("/a", 1, 0, 1000), tx("/a", 1, 1000, 1000, end=True),
           tx("/b", 2, 2000, 1000, end=True)]
    assert degree_of_multiplexing(log, "/a") == 0.0
    assert degree_of_multiplexing(log, "/b") == 0.0


def test_degree_high_for_perfect_interleave():
    log = [tx("/a", 1, 0, 100), tx("/b", 2, 100, 100),
           tx("/a", 1, 200, 100), tx("/b", 2, 300, 100, end=True),
           tx("/a", 1, 400, 100, end=True)]
    # Three equal runs: 1 - 1/3.
    assert degree_of_multiplexing(log, "/a") == pytest.approx(2 / 3)


def test_degree_counts_interruption_by_enclosed_object():
    # /b sits wholly between two halves of /a: /a is clearly interleaved.
    log = [tx("/a", 1, 0, 100), tx("/b", 2, 100, 100, end=True),
           tx("/a", 1, 200, 100, end=True)]
    assert degree_of_multiplexing(log, "/a") == pytest.approx(0.5)


def test_degree_partial_overlap():
    # /a spans [0, 1000); /b spans [500, 1500): half of /a is inside /b.
    log = [tx("/a", 1, 0, 500), tx("/b", 2, 500, 500),
           tx("/a", 1, 1000, 500, end=True),
           tx("/b", 2, 1500, 500, end=True)]
    # /a's second piece [1000,1500) lies inside /b's span [500,2000).
    degree = degree_of_multiplexing(log, "/a")
    assert 0.4 <= degree <= 0.6


def test_degree_defaults_to_first_non_duplicate_serve():
    log = [tx("/a", 1, 0, 100, end=True),
           tx("/b", 2, 100, 100, end=True),
           tx("/a", 3, 150, 100, dup=True, end=True)]
    assert degree_of_multiplexing(log, "/a") == 0.0


def test_object_serialized_requires_completed_clean_serve():
    interleaved = [tx("/a", 1, 0, 100), tx("/b", 2, 100, 100, end=True),
                   tx("/a", 1, 200, 100, end=True)]
    assert not object_serialized(interleaved, "/a")
    clean = interleaved + [tx("/a", 3, 300, 200, end=True)]
    assert object_serialized(clean, "/a")


def test_object_serialized_ignores_duplicates():
    log = [tx("/a", 1, 0, 100), tx("/b", 2, 100, 100, end=True),
           tx("/a", 1, 200, 100, end=True),
           tx("/a", 9, 300, 200, dup=True, end=True)]
    assert not object_serialized(log, "/a")


def test_missing_object_raises():
    with pytest.raises(KeyError):
        degree_of_multiplexing([tx("/a", 1, 0, 10, end=True)], "/zzz")


def test_serve_spans_grouping():
    log = [tx("/a", 1, 0, 100), tx("/a", 1, 100, 100, end=True),
           tx("/a", 2, 200, 100, end=True)]
    spans = serve_spans(log)
    assert set(spans) == {("/a", 1), ("/a", 2)}
    assert spans[("/a", 1)].total_bytes == 200


def test_mean_degree():
    log = [tx("/a", 1, 0, 100, end=True), tx("/b", 2, 100, 100, end=True)]
    assert mean_degree(log, ["/a", "/b"]) == 0.0

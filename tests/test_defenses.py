"""Defense mechanism tests."""

import random

import pytest

from repro.core.phases import AttackConfig
from repro.defenses.morphing import MorphingDefense
from repro.defenses.padding import (
    bucket_padding,
    exponential_padding,
    padding_overhead,
)
from repro.defenses.push import push_client_settings, push_defense_server_config
from repro.defenses.random_order import shuffle_scripted_requests
from repro.experiments.evaluation import sequence_accuracy
from repro.experiments.session import SessionConfig, run_session
from repro.http2.server import Http2ServerConfig
from repro.website.isidewith import (
    HTML_PATH,
    PARTIES,
    PARTY_IMAGE_SIZES,
    build_isidewith_site,
)


def rng():
    return random.Random(3)


# -- padding -------------------------------------------------------------------

def test_bucket_padding_rounds_up():
    pad = bucket_padding(4096)
    assert pad(1, None) == 4096
    assert pad(4096, None) == 4096
    assert pad(4097, None) == 8192


def test_bucket_padding_collapses_emblem_sizes():
    pad = bucket_padding(16_384)
    padded = {pad(size, None) for size in PARTY_IMAGE_SIZES.values()}
    assert len(padded) <= 2  # 5-16 KB all land in one or two buckets


def test_exponential_padding_monotone_and_bounded():
    pad = exponential_padding(1.3)
    for size in (100, 5_000, 60_000):
        padded = pad(size, None)
        assert size <= padded <= size * 1.3 + 1


def test_padding_validation():
    with pytest.raises(ValueError):
        bucket_padding(0)
    with pytest.raises(ValueError):
        exponential_padding(1.0)


def test_padding_overhead_fraction():
    overhead = padding_overhead([100, 100], bucket_padding(150))
    assert overhead == pytest.approx(0.5)


# -- morphing --------------------------------------------------------------------

def test_morphing_draws_from_cover_at_least_size():
    defense = MorphingDefense([5_000, 10_000, 20_000])
    r = rng()
    for _ in range(50):
        padded = defense(7_000, r)
        assert padded in (10_000, 20_000)


def test_morphing_pads_when_no_cover_fits():
    defense = MorphingDefense([1_000])
    assert defense(8_000, rng()) == 10_000


def test_morphing_requires_cover():
    with pytest.raises(ValueError):
        MorphingDefense([])


# -- random order -------------------------------------------------------------------

def test_shuffle_keeps_paths_and_gaps():
    site = build_isidewith_site()
    plan = site.plan_load(rng())
    original_paths = sorted(r.path for r in plan.scripted)
    original_gaps = [r.gap_s for r in plan.scripted]
    shuffled = shuffle_scripted_requests(plan, rng())
    assert sorted(r.path for r in shuffled.scripted) == original_paths
    assert [r.gap_s for r in shuffled.scripted] == original_gaps
    assert "wire_order" in shuffled.meta


def test_shuffle_changes_order_eventually():
    site = build_isidewith_site()
    r = rng()
    changed = 0
    for _ in range(5):
        plan = site.plan_load(r)
        before = [req.path for req in plan.scripted]
        shuffle_scripted_requests(plan, r)
        after = [req.path for req in plan.scripted]
        changed += before != after
    assert changed >= 4


def test_random_order_defeats_sequence_recovery():
    config = SessionConfig(seed=4, attack=AttackConfig(),
                           plan_transform=shuffle_scripted_requests)
    result = run_session(config)
    # The adversary may still decode the *wire* order perfectly...
    wire_order = result.plan.meta.get("wire_order")
    assert wire_order is not None
    # ...but the preference order is decoupled from it.
    assert sequence_accuracy(result) < 0.8


# -- push -------------------------------------------------------------------------

def test_push_defense_config_maps_html_to_emblems():
    site = build_isidewith_site()
    config = push_defense_server_config(site)
    pushed = config.push_map[HTML_PATH]
    assert len(pushed) == 8
    assert all("emblem" in path for path in pushed)


def test_push_client_settings_enable_push():
    assert push_client_settings().enable_push


def test_push_defense_images_never_requested():
    site_config = SessionConfig(
        seed=5, attack=AttackConfig(),
        server=push_defense_server_config(build_isidewith_site()),
        client_settings=push_client_settings())
    result = run_session(site_config)
    requested = {event.path for event in result.load.requests}
    assert not any("emblem" in path for path in requested)
    # The images still reach the user.
    assert result.load.success

"""Partial-multiplexing analyzer tests (Section VII extension)."""

import pytest

from repro.core.deinterleave import (
    PartialMultiplexAnalyzer,
    tail_payload,
)
from repro.simnet.trace import CompletedRecord

CHUNK = 1370
FRAMING = 30


def test_tail_payload():
    assert tail_payload(1370, CHUNK) == 1370
    assert tail_payload(1371, CHUNK) == 1
    assert tail_payload(9500, CHUNK) == 9500 - 6 * 1370
    assert tail_payload(500, CHUNK) == 500
    with pytest.raises(ValueError):
        tail_payload(0, CHUNK)


def make_records(objects, interleave=False, start=0.0):
    """Record streams for a list of object sizes.

    ``interleave`` round-robins the objects' records, the worst case for
    the plain estimator.
    """
    per_object = []
    for size in objects:
        records = []
        remaining = size
        while remaining > 0:
            chunk = min(CHUNK, remaining)
            remaining -= chunk
            records.append(chunk)
        per_object.append(records)

    sequence = []
    if interleave:
        cursor = [0] * len(per_object)
        while any(c < len(r) for c, r in zip(cursor, per_object)):
            for i, records in enumerate(per_object):
                if cursor[i] < len(records):
                    sequence.append(records[cursor[i]])
                    cursor[i] += 1
    else:
        for records in per_object:
            sequence.extend(records)

    out = []
    clock = start
    for i, payload in enumerate(sequence):
        out.append(CompletedRecord(
            record_id=i + 1, content_type=23, wire_len=payload + FRAMING,
            start_time=clock, end_time=clock, direction="s2c",
            final_packet_size=payload + FRAMING + 54))
        clock += 0.001
    return out


CENSUS = [9_500, 5_742, 7_158, 8_571, 10_420, 11_390, 12_805, 14_218,
          15_632, 2_050, 30_400, 46_600]


def test_identifies_serialized_run():
    analyzer = PartialMultiplexAnalyzer(CENSUS)
    records = make_records([9_500, 5_742])
    matches = analyzer.analyze(records)
    assert [m.size for m in matches] == [9_500, 5_742]
    assert all(m.confident for m in matches)


def test_identifies_fully_interleaved_run():
    """The headline: identities recovered where Fig. 1's estimator fails."""
    analyzer = PartialMultiplexAnalyzer(CENSUS)
    records = make_records([9_500, 14_218, 5_742], interleave=True)
    matches = analyzer.analyze(records)
    assert sorted(m.size for m in matches) == [5_742, 9_500, 14_218]
    assert all(m.confident for m in matches)


def test_duplicate_objects_both_found():
    analyzer = PartialMultiplexAnalyzer(CENSUS)
    records = make_records([5_742, 5_742], interleave=True)
    matches = analyzer.analyze(records)
    assert [m.size for m in matches] == [5_742, 5_742]


def test_conservation_disambiguates_residue_collision():
    # Two census sizes share a tail residue; only the sum identifies
    # which one is present alongside the 9_500 object.
    colliding = [9_500, 5_742, 5_742 + CHUNK]
    analyzer = PartialMultiplexAnalyzer(colliding)
    records = make_records([9_500, 5_742 + CHUNK], interleave=True)
    matches = analyzer.analyze(records)
    assert sorted(m.size for m in matches) == [5_742 + CHUNK, 9_500]
    assert all(m.confident for m in matches)


def test_truncated_object_degrades_to_residue_only():
    analyzer = PartialMultiplexAnalyzer(CENSUS)
    records = make_records([9_500, 5_742])
    # Drop one full record: conservation now fails.
    records = [r for i, r in enumerate(records) if i != 0]
    matches = analyzer.analyze(records)
    assert matches  # residue-only fallback still names unique tails
    assert all(not m.confident for m in matches)


def test_unknown_tail_degrades_gracefully():
    analyzer = PartialMultiplexAnalyzer([9_500])
    records = make_records([9_500, 4_444])  # 4_444 not in census
    matches = analyzer.analyze(records)
    assert [m.size for m in matches] == [9_500]
    assert not matches[0].confident


def test_runs_split_on_time_gaps():
    analyzer = PartialMultiplexAnalyzer(CENSUS, run_gap_s=0.25)
    first = make_records([9_500], start=0.0)
    second = make_records([5_742], start=10.0)
    matches = analyzer.analyze(first + second)
    assert [m.size for m in matches] == [9_500, 5_742]
    assert all(m.confident for m in matches)


def test_control_records_ignored():
    analyzer = PartialMultiplexAnalyzer(CENSUS)
    records = make_records([9_500])
    records.insert(1, CompletedRecord(
        record_id=999, content_type=23, wire_len=34, start_time=0.0005,
        end_time=0.0005, direction="s2c", final_packet_size=88))
    matches = analyzer.analyze(records)
    assert [m.size for m in matches] == [9_500]
    assert matches[0].confident


def test_empty_census_rejected():
    with pytest.raises(ValueError):
        PartialMultiplexAnalyzer([])


def test_attack_report_carries_partial_labels():
    from repro.core.phases import AttackConfig
    from repro.experiments.session import SessionConfig, run_session
    result = run_session(SessionConfig(seed=0, attack=AttackConfig()))
    report = result.report
    assert report.partial_matches
    # The partial channel should at minimum see the emblem burst.
    assert len([l for l in report.partial_labels if l != "html"]) >= 4

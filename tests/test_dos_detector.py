"""DosDetector: rule-by-rule classification and the passivity contract.

The detector consumes the existing probe taps and must (a) flag each
attack shape in the taxonomy, (b) stay silent on legitimate traffic --
including the slow-client shape naive timeouts misclassify -- and (c)
add zero simulator events when attached (byte-identity).
"""

import pytest

from repro.browser.browser import Browser, BrowserConfig
from repro.http2 import frames as fr
from repro.http2.client import Http2Client, Http2ClientConfig
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.invariants import DosDetector, DosDetectorConfig, DosViolation
from repro.invariants.violations import DOMAIN_ERRORS
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.tcp.connection import TcpConfig
from repro.website.isidewith import build_isidewith_site


class _Clock:
    def __init__(self):
        self.now = 0.0


class _Tcp:
    pass


class _H2:
    class _Tls:
        def __init__(self, conn):
            self.conn = conn

    def __init__(self, conn):
        self.tls = self._Tls(conn)


def _pair():
    tcp = _Tcp()
    return tcp, _H2(tcp)


# -- config -------------------------------------------------------------------

def test_config_rejects_nonpositive_thresholds():
    for field in ("preamble_threshold_s", "dangling_min_streams",
                  "ping_rate_per_s", "sweep_every_events", "max_flags"):
        with pytest.raises(ValueError, match=field):
            DosDetectorConfig(**{field: 0}).validate()


def test_dos_domain_is_registered():
    assert DOMAIN_ERRORS["dos"] is DosViolation


# -- slow rules (sweep-driven) ------------------------------------------------

def test_slow_preamble_flagged_after_threshold():
    clock = _Clock()
    detector = DosDetector(clock, DosDetectorConfig(sweep_every_events=1))
    tcp, _h2 = _pair()
    detector.on_segment(tcp, "recv", None)
    clock.now = 3.0  # > 2.0s with no client SETTINGS
    detector.on_segment(tcp, "recv", None)
    assert detector.codes() == ["DOS_SLOW_PREAMBLE"]
    assert detector.flags[0].domain == "dos"
    assert abs(detector.first_flag_at - 3.0) < 1e-9


def test_completed_preamble_is_never_slow():
    clock = _Clock()
    detector = DosDetector(clock, DosDetectorConfig(sweep_every_events=1))
    _tcp, h2 = _pair()
    detector.on_frame(h2, "recv", fr.SettingsFrame(settings={1: 100}), False)
    clock.now = 50.0
    detector.finalize()
    assert not detector.detected


def test_dangling_headers_flagged_at_min_streams():
    clock = _Clock()
    config = DosDetectorConfig(sweep_every_events=1, dangling_min_streams=4)
    detector = DosDetector(clock, config)
    _tcp, h2 = _pair()
    detector.on_frame(h2, "recv", fr.SettingsFrame(settings={1: 1}), False)
    for stream_id in (1, 3, 5, 7):
        detector.on_frame(h2, "recv", fr.HeadersFrame(
            stream_id=stream_id, end_stream=False), False)
    clock.now = 3.0  # > dangling_threshold_s with zero body bytes
    detector.finalize()
    assert detector.codes() == ["DOS_SLOW_HEADERS"]


def test_trickling_bodies_flagged():
    clock = _Clock()
    config = DosDetectorConfig(sweep_every_events=10_000,
                               dangling_min_streams=2,
                               trickle_min_frames=2)
    detector = DosDetector(clock, config)
    _tcp, h2 = _pair()
    detector.on_frame(h2, "recv", fr.SettingsFrame(settings={1: 1}), False)
    for stream_id in (1, 3):
        detector.on_frame(h2, "recv", fr.HeadersFrame(
            stream_id=stream_id, end_stream=False), False)
        for _ in range(3):
            clock.now += 1.0
            detector.on_frame(h2, "recv", fr.DataFrame(
                stream_id=stream_id, length=1), False)
    detector.finalize()
    assert detector.codes() == ["DOS_SLOW_POST"]


def test_bulk_upload_is_not_a_trickle():
    clock = _Clock()
    config = DosDetectorConfig(sweep_every_events=10_000,
                               dangling_min_streams=1)
    detector = DosDetector(clock, config)
    _tcp, h2 = _pair()
    detector.on_frame(h2, "recv", fr.SettingsFrame(settings={1: 1}), False)
    detector.on_frame(h2, "recv", fr.HeadersFrame(
        stream_id=1, end_stream=False), False)
    for _ in range(8):  # real POST body: full-size frames
        clock.now += 0.01
        detector.on_frame(h2, "recv", fr.DataFrame(
            stream_id=1, length=1370), False)
    detector.finalize()
    assert not detector.detected


def test_completed_request_stops_dangling():
    clock = _Clock()
    config = DosDetectorConfig(sweep_every_events=10_000,
                               dangling_min_streams=1)
    detector = DosDetector(clock, config)
    _tcp, h2 = _pair()
    detector.on_frame(h2, "recv", fr.SettingsFrame(settings={1: 1}), False)
    detector.on_frame(h2, "recv", fr.HeadersFrame(
        stream_id=1, end_stream=False), False)
    detector.on_frame(h2, "recv", fr.DataFrame(
        stream_id=1, length=900, end_stream=True), False)
    clock.now = 60.0
    detector.finalize()
    assert not detector.detected


# -- rate rules (inline) ------------------------------------------------------

@pytest.mark.parametrize("frame,code", [
    (fr.PingFrame(), "DOS_PING_FLOOD"),
    (fr.SettingsFrame(settings={1: 1}), "DOS_SETTINGS_FLOOD"),
    (fr.RstStreamFrame(stream_id=1), "DOS_RESET_CHURN"),
])
def test_control_frame_floods_flagged_inline(frame, code):
    clock = _Clock()
    config = DosDetectorConfig(ping_rate_per_s=5.0, settings_rate_per_s=5.0,
                               reset_rate_per_s=5.0,
                               sweep_every_events=10_000)
    detector = DosDetector(clock, config)
    _tcp, h2 = _pair()
    for _ in range(7):  # 7 within one second > budget 5/s
        clock.now += 0.01
        detector.on_frame(h2, "recv", frame, False)
    assert code in detector.codes()


def test_slow_control_frames_stay_within_budget():
    clock = _Clock()
    config = DosDetectorConfig(ping_rate_per_s=5.0,
                               sweep_every_events=10_000)
    detector = DosDetector(clock, config)
    _tcp, h2 = _pair()
    detector.on_frame(h2, "recv", fr.SettingsFrame(settings={1: 1}), False)
    for _ in range(20):  # 2/s: the window resets before the budget trips
        clock.now += 0.5
        detector.on_frame(h2, "recv", fr.PingFrame(), False)
    detector.finalize()
    assert not detector.detected


def test_acks_and_sent_frames_are_not_counted():
    clock = _Clock()
    config = DosDetectorConfig(ping_rate_per_s=2.0,
                               sweep_every_events=10_000)
    detector = DosDetector(clock, config)
    _tcp, h2 = _pair()
    detector.on_frame(h2, "recv", fr.SettingsFrame(settings={1: 1}), False)
    for _ in range(20):
        clock.now += 0.01
        detector.on_frame(h2, "recv", fr.PingFrame(ack=True), False)
        detector.on_frame(h2, "send", fr.PingFrame(), False)
        detector.on_frame(h2, "recv", fr.PingFrame(), True)  # duplicate
    detector.finalize()
    assert not detector.detected


# -- emission bounds ----------------------------------------------------------

def test_one_flag_per_connection_and_code():
    clock = _Clock()
    detector = DosDetector(clock, DosDetectorConfig(ping_rate_per_s=2.0,
                                                    sweep_every_events=10_000))
    _tcp, h2 = _pair()
    for _ in range(50):
        clock.now += 0.001
        detector.on_frame(h2, "recv", fr.PingFrame(), False)
    assert len(detector.flags) == 1


def test_max_flags_bounds_emissions():
    clock = _Clock()
    detector = DosDetector(clock, DosDetectorConfig(ping_rate_per_s=1.0,
                                                    sweep_every_events=10_000,
                                                    max_flags=3))
    for _ in range(10):
        _tcp, h2 = _pair()
        for _ in range(5):
            clock.now += 0.001
            detector.on_frame(h2, "recv", fr.PingFrame(), False)
    assert len(detector.flags) == 3


# -- passivity: attached detector changes nothing -----------------------------

def _legit_load(seed: int, with_detector: bool):
    sim = Simulator(seed=seed)
    topo = StandardTopology(sim, TopologyConfig())
    site = build_isidewith_site()
    server = Http2Server(sim, topo.server, site, Http2ServerConfig(),
                         tcp_config=TcpConfig(deliver_duplicates=True))
    detector = DosDetector(sim) if with_detector else None
    if detector is not None:
        detector.attach(server)
    client = Http2Client(sim, topo.client, server_addr="server", port=443,
                         config=Http2ClientConfig(authority=site.authority),
                         tcp_config=TcpConfig(deliver_duplicates=False))
    browser = Browser(sim, client, site.plan_load(sim.rng("plan"),
                                                  warm=False),
                      BrowserConfig())
    browser.start()
    sim.run(until=40.0)
    assert browser.result is not None
    return sim.processed_events, detector


def test_attached_detector_is_byte_identical_and_silent():
    bare_events, _ = _legit_load(11, with_detector=False)
    probed_events, detector = _legit_load(11, with_detector=True)
    assert probed_events == bare_events
    assert detector.events > 0  # it really observed the whole load
    assert not detector.detected  # and judged it legitimate

"""The ``repro dos`` experiment family: cells, aggregation, verdicts.

A cell is one attacked (or control) legitimate page load; the sweep's
verdict lines are the CI dos-smoke contract, so their exact grep
tokens are pinned here.
"""

from repro.experiments.dos_eval import (
    CONTROL_KIND,
    attack_spec,
    run_cell,
    run_dos_eval,
    server_config,
)
from repro.experiments.runner import RunCache, RunSpec


def test_control_cell_loads_cleanly_on_a_slow_link():
    cell = run_cell(0, CONTROL_KIND, "open", 0.0, None)
    assert cell["goodput_pct"] == 100.0
    assert not cell["detected"]
    assert not cell["exhausted"]


def test_open_server_is_exhausted_and_detected():
    spec = attack_spec("slow_headers", 1.0)
    cell = run_cell(0, "slow_headers", "open", 1.0, spec.to_jsonable())
    assert cell["exhausted"]
    assert cell["detected"]
    assert "DOS_SLOW_HEADERS" in cell["detect_codes"]


def test_hardened_server_keeps_goodput_and_still_detects():
    spec = attack_spec("slow_headers", 1.0)
    cell = run_cell(0, "slow_headers", "hardened", 1.0, spec.to_jsonable())
    assert cell["goodput_pct"] >= 90.0
    assert cell["detected"]
    assert cell["timed_out_streams"] > 0  # the hardening actually acted


def test_cell_is_deterministic():
    spec = attack_spec("ping_flood", 0.5).to_jsonable()
    assert run_cell(3, "ping_flood", "open", 0.5, spec) == \
        run_cell(3, "ping_flood", "open", 0.5, spec)


def test_attack_spec_is_part_of_the_cache_key():
    cell = "repro.experiments.dos_eval:run_cell"
    base = dict(kind="slow_post", profile="open", intensity=1.0)
    a = RunSpec.make(cell, 0, attack=attack_spec("slow_post",
                                                 1.0).to_jsonable(), **base)
    b = RunSpec.make(cell, 0, attack=attack_spec("slow_post",
                                                 0.5).to_jsonable(), **base)
    assert a.key("v") != b.key("v")


def test_profiles_are_validated():
    try:
        server_config("medium-rare")
    except ValueError as error:
        assert "unknown server profile" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_sweep_aggregates_and_renders_verdicts():
    result = run_dos_eval(n_per_point=1, kinds=("slow_preamble",),
                          intensities=(1.0,), jobs=1,
                          cache=RunCache.disabled())
    assert not result.failures
    # 2 profiles x (1 attack + 1 control) = 4 points.
    assert len(result.points) == 4
    text = result.table().to_text()
    assert "slow_preamble" in text and "hardened" in text

    lines = result.verdict_lines()
    assert lines[0].startswith("dos: attack cells flagged: ALL (2/2)")
    assert lines[1].startswith("dos: control false positives: NONE (0/2)")
    assert lines[2].startswith("dos: hardened goodput >= 90%: PASS")
    assert lines[3].startswith("dos: unhardened exhaustion: ALL (1/1)")

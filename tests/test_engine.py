"""Event loop and random-stream tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.randomness import RandomStreams


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.5, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 1.5


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_simulator_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.schedule(0.1, reenter)
    sim.run()


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    handle = sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.pending_events() == 1


def test_pending_events_tracks_schedule_cancel_and_run():
    sim = Simulator()
    handles = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(4)]
    assert sim.pending_events() == 4
    handles[0].cancel()
    handles[0].cancel()  # double-cancel must not decrement twice
    assert sim.pending_events() == 3
    sim.run(max_events=2)
    assert sim.pending_events() == 1
    sim.run()
    assert sim.pending_events() == 0


def test_pending_events_counts_events_scheduled_during_run():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: None))
    sim.run(until=1.0)
    assert sim.pending_events() == 1


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(0.1, lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_named_streams_are_deterministic():
    a = RandomStreams(42)
    b = RandomStreams(42)
    assert [a.get("x").random() for _ in range(5)] == \
           [b.get("x").random() for _ in range(5)]


def test_named_streams_are_independent():
    streams = RandomStreams(42)
    first = [streams.get("x").random() for _ in range(5)]
    # Drawing from another stream must not perturb the first.
    streams2 = RandomStreams(42)
    streams2.get("y").random()
    second = [streams2.get("x").random() for _ in range(5)]
    assert first == second


def test_different_seeds_differ():
    a = RandomStreams(1).get("x").random()
    b = RandomStreams(2).get("x").random()
    assert a != b


def test_fork_gives_independent_registry():
    base = RandomStreams(7)
    fork1 = base.fork("rep1")
    fork2 = base.fork("rep2")
    assert fork1.get("x").random() != fork2.get("x").random()


def test_simulator_rng_is_stream_backed():
    sim_a = Simulator(seed=5)
    sim_b = Simulator(seed=5)
    assert sim_a.rng("link").random() == sim_b.rng("link").random()

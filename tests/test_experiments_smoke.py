"""Small-N smoke tests of every experiment harness.

Each harness is exercised end to end at tiny repetition counts: these
assert structure and sanity, not the calibrated numbers (the benchmarks
assert shapes at realistic N).
"""

import pytest

from repro.experiments.ablations import (
    legacy_tcp_config,
    run_dupserve_ablation,
    run_recovery_ablation,
    run_scheduler_ablation,
)
from repro.experiments.baseline import run_baseline
from repro.experiments.drops import run_drops
from repro.experiments.figure5 import run_figure5
from repro.experiments.size_estimation import run_size_estimation
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.viz import degree_summary, wire_timeline


def test_baseline_structure():
    result = run_baseline(n_loads=4)
    assert result.n == 4
    assert 0 <= result.html_nonmux_pct <= 100
    assert 0 <= result.image_mean_degree <= 1
    text = result.table().to_text()
    assert "HTML" in text


def test_table1_structure():
    result = run_table1(n_per_point=2, jitter_values=(0.0, 0.05))
    assert [p.jitter_s for p in result.points] == [0.0, 0.05]
    assert result.points[0].retx_increase_pct == 0.0
    assert "Table I" in result.table().to_text()


def test_table1_netem_style():
    result = run_table1(n_per_point=2, jitter_values=(0.05,), style="netem")
    assert result.style == "netem"


def test_figure5_structure():
    result = run_figure5(n_per_point=2, bandwidths=(800e6,))
    point = result.points[0]
    assert point.bandwidth_bps == 800e6
    assert point.mean_duration_s > 0
    assert "bandwidth" in result.table().to_text()


def test_drops_structure():
    result = run_drops(n_per_point=2, drop_rates=(0.8,))
    point = result.points[0]
    assert 0 <= point.html_serialized_pct <= 100
    assert "drop rate" in result.table().to_text()


def test_table2_structure():
    result = run_table2(n_loads=3)
    assert len(result.single_pct) == 9
    assert len(result.all_pct) == 9
    assert all(result.single_pct[i] >= result.all_pct[i]
               for i in range(9))
    assert "Table II" in result.table().to_text()


def test_size_estimation_runs():
    result = run_size_estimation()
    assert result.serialized_exact
    assert not result.multiplexed_exact


def test_scheduler_ablation_structure():
    result = run_scheduler_ablation(n_per_point=2,
                                    schedulers=("round-robin", "fifo"))
    assert [p.scheduler for p in result.points] == ["round-robin", "fifo"]


def test_dupserve_ablation_structure():
    result = run_dupserve_ablation(n_per_point=2)
    by_mode = {p.serve_duplicates: p for p in result.points}
    assert by_mode[False].duplicate_serves_per_load == 0.0


def test_recovery_ablation_structure():
    result = run_recovery_ablation(n_per_point=2)
    assert [p.stack for p in result.points] == ["modern", "legacy-2020"]


def test_legacy_tcp_config_flags():
    config = legacy_tcp_config()
    assert not config.enable_tlp
    assert not config.enable_rack
    assert config.rto_backoff_cap == 64


def test_wire_timeline_renders():
    from repro.experiments.session import SessionConfig, run_session
    result = run_session(SessionConfig(seed=0))
    text = wire_timeline(result.tx_log, width=60)
    assert "#" in text
    lines = text.splitlines()
    assert all(len(line) <= 120 for line in lines)


def test_wire_timeline_empty_window():
    assert "no transmissions" in wire_timeline([], width=40)


def test_degree_summary_renders():
    from repro.experiments.session import SessionConfig, run_session
    from repro.website.isidewith import HTML_PATH
    result = run_session(SessionConfig(seed=0))
    text = degree_summary(result.tx_log, [HTML_PATH, "/nope"])
    assert "degree" in text
    assert "(not served)" in text


def test_planner_plan_attack():
    from repro.core.planner import plan_attack
    from repro.website.isidewith import build_isidewith_site
    site = build_isidewith_site()
    config = plan_attack([o.size for o in site.objects.values()], rtt_s=0.03)
    config.validate()
    # In the ballpark of the paper's hand-tuned 50/80 ms.
    assert 0.02 <= config.spacing_s <= 0.12
    assert config.serialize_spacing_s >= config.spacing_s
    with pytest.raises(ValueError):
        plan_attack([], rtt_s=0.03)

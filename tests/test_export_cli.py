"""Trace export/import and CLI tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.estimator import SizeEstimator
from repro.experiments.session import SessionConfig, run_session
from repro.simnet.export import load_trace, packet_from_dict, packet_to_dict, save_trace
from repro.simnet.middlebox import SERVER_TO_CLIENT


def test_trace_roundtrip(tmp_path):
    result = run_session(SessionConfig(seed=0))
    path = tmp_path / "capture.jsonl"
    count = save_trace(result.trace, path)
    assert count == len(result.trace.packets(include_dropped=True))

    loaded = load_trace(path)
    assert len(loaded) == count
    original = result.trace.packets(SERVER_TO_CLIENT)
    reloaded = loaded.packets(SERVER_TO_CLIENT)
    assert len(reloaded) == len(original)
    assert [p.view.size for p in reloaded] == [p.view.size for p in original]


def test_analysis_works_on_reloaded_capture(tmp_path):
    result = run_session(SessionConfig(seed=1))
    path = tmp_path / "capture.jsonl"
    save_trace(result.trace, path)
    loaded = load_trace(path)
    original_estimates = SizeEstimator().estimate_from_trace(result.trace)
    loaded_estimates = SizeEstimator().estimate_from_trace(loaded)
    assert [e.size for e in loaded_estimates] == \
           [e.size for e in original_estimates]


def test_packet_dict_roundtrip_fields():
    result = run_session(SessionConfig(seed=0))
    captured = result.trace.packets()[0]
    data = json.loads(json.dumps(packet_to_dict(captured)))
    restored = packet_from_dict(data)
    assert restored.view == captured.view
    assert restored.time == captured.time


def test_parser_lists_all_experiments():
    parser = build_parser()
    commands = {"attack", "baseline", "table1", "figure5", "drops",
                "table2", "defenses", "size-estimation", "fingerprint",
                "streaming", "recovery-ablation"}
    text = parser.format_help()
    for command in commands:
        assert command in text


def test_cli_attack_runs(capsys):
    assert main(["attack", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "adversary decoded" in out
    assert "positions recovered" in out


def test_cli_size_estimation_runs(capsys):
    assert main(["size-estimation"]) == 0
    out = capsys.readouterr().out
    assert "serialized" in out and "multiplexed" in out


def test_cli_drops_small_n(capsys):
    assert main(["drops", "-n", "2"]) == 0
    assert "drop rate" in capsys.readouterr().out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])

"""Fault-injection subsystem: plans, the injector, end-to-end recovery."""

import pytest

from repro.browser.browser import BrowserConfig
from repro.experiments.session import SessionConfig, run_session
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    plan_for_intensity,
)
from repro.simnet.engine import Simulator
from repro.simnet.middlebox import UniformDelayPolicy
from repro.simnet.topology import StandardTopology


# -- plan validation and round-trip ----------------------------------------

def test_plan_json_roundtrip():
    plan = FaultPlan((
        FaultEvent("link_down", at_s=1.0, duration_s=0.5,
                   target="mbox->client"),
        FaultEvent("server_abort", at_s=2.0),
    ))
    plan.validate()
    assert FaultPlan.from_jsonable(plan.to_jsonable()) == plan


def test_plan_coerce_accepts_plan_list_and_none():
    plan = FaultPlan((FaultEvent("server_stall", 1.0, 0.2),))
    assert FaultPlan.coerce(None) is None
    assert FaultPlan.coerce(plan) is plan
    assert FaultPlan.coerce(plan.to_jsonable()) == plan
    with pytest.raises(TypeError):
        FaultPlan.coerce("link_down")


@pytest.mark.parametrize("event", [
    FaultEvent("power_cut", 1.0),                      # unknown kind
    FaultEvent("server_stall", -1.0, 0.2),             # negative onset
    FaultEvent("server_stall", 1.0, -0.2),             # negative duration
    FaultEvent("server_abort", 1.0, duration_s=0.5),   # instant kind
    FaultEvent("link_down", 1.0, 0.5),                 # missing target
    FaultEvent("server_stall", 1.0, 0.2, target="x"),  # spurious target
])
def test_plan_validation_rejects_bad_events(event):
    with pytest.raises(ValueError):
        FaultPlan((event,)).validate()


def test_plan_sorted_is_canonical():
    a = FaultEvent("server_stall", 2.0, 0.1)
    b = FaultEvent("middlebox_crash", 1.0, 0.1)
    assert FaultPlan((a, b)).sorted() == FaultPlan((b, a)).sorted()


def test_plan_for_intensity_is_deterministic():
    a = plan_for_intensity(0.5, seed=11)
    b = plan_for_intensity(0.5, seed=11)
    assert a == b
    assert a.to_jsonable() == b.to_jsonable()
    assert plan_for_intensity(0.5, seed=12) != a
    assert plan_for_intensity(0.0, seed=11) == FaultPlan()
    with pytest.raises(ValueError):
        plan_for_intensity(1.5, seed=0)


def test_plan_for_intensity_scales_event_count():
    low = plan_for_intensity(0.25, seed=3)
    high = plan_for_intensity(1.0, seed=3)
    assert 1 <= len(low) < len(high)
    high.validate()


# -- the injector against a live topology ----------------------------------

def test_injector_flaps_a_link():
    sim = Simulator(seed=1)
    topo = StandardTopology(sim)
    plan = FaultPlan((FaultEvent("link_down", at_s=0.5, duration_s=0.25,
                                 target="mbox->client"),))
    injector = FaultInjector(sim, topo, plan=plan)
    injector.arm()
    link = topo.links["mbox->client"]

    sim.run(until=0.6)
    assert not link.up
    sim.run(until=1.0)
    assert link.up
    assert link.flaps == 1
    assert injector.applied == [(0.5, "link_down", "mbox->client"),
                                (0.75, "link_up", "mbox->client")]


def test_injector_crashes_and_recovers_the_middlebox():
    sim = Simulator(seed=1)
    topo = StandardTopology(sim)
    policy = topo.middlebox.add_policy(UniformDelayPolicy(0.01))
    injector = FaultInjector(sim, topo, plan=FaultPlan((
        FaultEvent("middlebox_crash", at_s=0.2, duration_s=0.3),)))
    injector.arm()

    sim.run(until=0.3)
    assert topo.middlebox.failed
    assert topo.middlebox.policies == ()  # policies dropped out
    sim.run(until=0.6)
    assert not topo.middlebox.failed
    assert topo.middlebox.policies == (policy,)  # re-attached
    assert topo.middlebox.crashes == 1


def test_injector_rejects_unknown_link():
    sim = Simulator(seed=1)
    topo = StandardTopology(sim)
    injector = FaultInjector(sim, topo, plan=FaultPlan((
        FaultEvent("link_down", 1.0, 0.5, target="no-such-link"),)))
    with pytest.raises(ValueError, match="no-such-link"):
        injector.arm()


def test_injector_requires_server_for_server_faults():
    sim = Simulator(seed=1)
    topo = StandardTopology(sim)
    injector = FaultInjector(sim, topo, plan=FaultPlan((
        FaultEvent("server_abort", 1.0),)))
    with pytest.raises(ValueError, match="server"):
        injector.arm()


def test_injector_arms_once():
    sim = Simulator(seed=1)
    topo = StandardTopology(sim)
    injector = FaultInjector(sim, topo, plan=FaultPlan())
    injector.arm()
    with pytest.raises(RuntimeError):
        injector.arm()


# -- end-to-end recovery ----------------------------------------------------

def _faulted_config(seed: int, plan: FaultPlan,
                    max_reconnects: int = 2) -> SessionConfig:
    return SessionConfig(
        seed=seed,
        faults=plan.to_jsonable(),
        browser=BrowserConfig(max_reconnects=max_reconnects),
    )


def test_server_abort_mid_load_recovers_on_fresh_connection():
    plan = FaultPlan((FaultEvent("server_abort", at_s=0.5),))
    result = run_session(_faulted_config(seed=5, plan=plan))
    assert result.injector.applied == [(0.5, "server_abort", "")]
    assert result.load is not None
    assert result.load.reconnects >= 1
    assert result.load.success
    assert not result.broken


def test_server_abort_without_reconnects_breaks_the_load():
    plan = FaultPlan((FaultEvent("server_abort", at_s=0.5),))
    result = run_session(_faulted_config(seed=5, plan=plan,
                                         max_reconnects=0))
    assert result.broken


def test_max_reconnects_exhaustion_breaks_the_load():
    """More aborts than the reconnect budget: the browser spends every
    allowed reconnect, then the next abort is fatal."""
    plan = FaultPlan((
        FaultEvent("server_abort", at_s=0.4),
        FaultEvent("server_abort", at_s=0.9),
        FaultEvent("server_abort", at_s=1.4),
        FaultEvent("server_abort", at_s=1.9),
    ))
    result = run_session(_faulted_config(seed=5, plan=plan,
                                         max_reconnects=2))
    assert result.broken
    assert result.load is not None
    assert result.load.reconnects == 2  # the budget was fully spent


def test_reconnect_budget_above_abort_count_recovers():
    plan = FaultPlan((
        FaultEvent("server_abort", at_s=0.4),
        FaultEvent("server_abort", at_s=1.0),
    ))
    result = run_session(_faulted_config(seed=5, plan=plan,
                                         max_reconnects=5))
    assert not result.broken
    assert result.load.reconnects >= 2


def test_server_abort_during_tls_handshake_sends_no_goaway():
    """Regression: an abort landing while a (re)connection's TLS
    handshake was still in flight used to crash the simulation trying
    to send the best-effort GOAWAY on an unestablished session.  Such a
    connection must die with a bare FIN instead."""
    plan = FaultPlan((
        FaultEvent("server_abort", at_s=0.4),
        FaultEvent("server_abort", at_s=0.9),  # hits the reconnect handshake
        FaultEvent("server_abort", at_s=1.4),
        FaultEvent("server_abort", at_s=1.9),
    ))
    config = _faulted_config(seed=5, plan=plan, max_reconnects=2)
    config.monitors = True
    result = run_session(config)  # must not raise
    assert result.injector.applied[1] == (0.9, "server_abort", "")
    assert result.monitor.violations == []


def test_plan_for_intensity_zero_is_an_empty_valid_plan():
    plan = plan_for_intensity(0.0, seed=7)
    assert len(plan) == 0
    plan.validate()  # vacuously valid
    assert plan.to_jsonable() == []
    assert FaultPlan.coerce(plan.to_jsonable()) == plan
    # An empty plan arms nothing: the session runs injector-free.
    result = run_session(_faulted_config(seed=5, plan=plan))
    assert result.injector is None
    assert not result.broken


def test_server_stall_delays_but_does_not_break_the_load():
    plan = FaultPlan((FaultEvent("server_stall", at_s=0.3,
                                 duration_s=1.0),))
    faulted = run_session(_faulted_config(seed=5, plan=plan))
    clean = run_session(SessionConfig(seed=5))
    assert not faulted.broken
    assert faulted.server.stalls == 1
    assert faulted.load.duration_s > clean.load.duration_s


def test_middlebox_crash_blinds_the_trace():
    """While the gateway is down its taps see nothing: the adversary's
    capture has a hole exactly as wide as the outage."""
    plan = FaultPlan((FaultEvent("middlebox_crash", at_s=0.4,
                                 duration_s=0.3),))
    result = run_session(_faulted_config(seed=5, plan=plan))
    times = [p.time for p in result.trace.packets()]
    in_outage = [t for t in times if 0.4 <= t < 0.7]
    assert in_outage == []
    assert any(t < 0.4 for t in times)
    assert any(t >= 0.7 for t in times)


def test_fault_sessions_are_deterministic():
    plan = plan_for_intensity(1.0, seed=2)
    a = run_session(_faulted_config(seed=2, plan=plan))
    b = run_session(_faulted_config(seed=2, plan=plan))
    assert a.injector.applied == b.injector.applied
    assert a.processed_events == b.processed_events
    assert a.duration_s == b.duration_s
    load_a, load_b = a.load, b.load
    assert (load_a is None) == (load_b is None)
    if load_a is not None:
        assert load_a.completed_paths == load_b.completed_paths
        assert load_a.reconnects == load_b.reconnects
        assert [(e.time, e.path) for e in load_a.requests] == \
               [(e.time, e.path) for e in load_b.requests]

"""Flow-sensitive core: CFG shapes, dataflow solver, typestate rules.

Three layers under test:

* :mod:`repro.lint.cfg` -- golden-shape tests pin the exact edge list
  for each structured-statement lowering (branch, loops, try/finally,
  with, match).  The shapes are load-bearing: PROTO001 dominance and
  the RES/DOS path searches consume them.
* :mod:`repro.lint.dataflow` -- dominators on a diamond, and solver
  convergence on a loop-carried definition (the classic fixpoint that
  a single forward pass gets wrong).
* :mod:`repro.lint.typestate` / the DOS checks -- one fixture per rule
  (RES001-RES004, DOS001-DOS003) asserting the exact code, law, and
  CFG-path evidence.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint import lint_source
from repro.lint.cfg import build_cfg, header_nodes, may_raise
from repro.lint.dataflow import (
    dominates,
    dominators,
    immediate_dominators,
    liveness,
    reaching_definitions,
)


def cfg_for(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0], build_cfg(tree.body[0])


def shape(source: str):
    """Render every edge as ``src->dst kind`` (synthetic sinks named)."""
    _fn, cfg = cfg_for(source)
    names = {cfg.exit: "exit", cfg.error: "error"}

    def nm(bid: int) -> str:
        return names.get(bid, f"b{bid}")

    return [f"{nm(e.source)}->{nm(e.target)} {e.kind}"
            for e in sorted(cfg.edges,
                            key=lambda e: (e.source, e.target, e.kind))]


def findings_for(source: str, **kwargs):
    return lint_source(textwrap.dedent(source), "repro.simnet.fixture",
                       **kwargs)


# -- CFG golden shapes --------------------------------------------------------

class TestCfgShapes:
    def test_branch_diamond(self):
        assert shape("""
            def f(x):
                if x:
                    a()
                else:
                    b()
                c()
        """) == [
            "b0->b1 true",
            "b0->b2 false",
            "b1->error raise",
            "b1->b3 next",
            "b2->error raise",
            "b2->b3 next",
            "b3->error raise",
            "b3->exit return",
        ]

    def test_for_loop_with_break(self):
        assert shape("""
            def f(items):
                for item in items:
                    if item:
                        break
                return items
        """) == [
            "b0->b1 next",
            "b1->b2 loop-exit",
            "b1->b3 loop",
            "b2->exit return",
            "b3->b4 true",
            "b3->b6 false",
            "b4->b2 break",
            "b6->b7 next",
            "b7->b1 back",
        ]

    def test_while_loop(self):
        assert shape("""
            def f(n):
                while n > 0:
                    n -= 1
                return n
        """) == [
            "b0->b1 next",
            "b1->b2 false",
            "b1->b3 true",
            "b2->exit return",
            "b3->b1 back",
        ]

    def test_try_except_finally(self):
        # b1 = handler dispatch, b2 = try body, b3 = finally, b4 = the
        # ValueError handler.  The dispatch escape (no handler matches)
        # routes *through* the finally block, which carries both its own
        # sealed raise edge and the propagation continuation.
        assert shape("""
            def f(x):
                try:
                    risky(x)
                except ValueError:
                    handle(x)
                finally:
                    cleanup(x)
                return x
        """) == [
            "b0->b2 next",
            "b1->b3 except",
            "b1->b4 except",
            "b2->b1 except",
            "b2->b3 next",
            "b3->error raise",
            "b3->error raise",
            "b3->b5 next",
            "b4->error raise",
            "b4->b3 next",
            "b5->exit return",
        ]

    def test_return_inside_try_routes_through_finally(self):
        # b2 = try body, b1 = handler dispatch, b4 = finally, b5 = the
        # (unreachable) fall-through.  The `return` does not edge to
        # exit directly: it is deferred into the finally block
        # (b2->b4 next), which then carries the return edge
        # (b4->exit) -- so a release in the finally covers the early
        # return, and RES checks see the cleanup on that path.
        assert shape("""
            def f(x):
                try:
                    return g(x)
                finally:
                    cleanup(x)
        """) == [
            "b0->b2 next",
            "b1->b4 except",
            "b2->b1 except",
            "b2->b4 next",
            "b4->error raise",
            "b4->error raise",
            "b4->exit return",
            "b4->b5 next",
            "b5->exit return",
        ]

    def test_with_block(self):
        assert shape("""
            def f(x):
                with lock(x) as guard:
                    body(guard)
                return x
        """) == [
            "b0->error raise",
            "b0->b1 with",
            "b1->error raise",
            "b1->b2 next",
            "b2->exit return",
        ]

    def test_match_cases(self):
        # A wildcard arm means no case-else fall-through edge.
        assert shape("""
            def f(cmd):
                match cmd:
                    case "open":
                        a()
                    case "close":
                        b()
                    case _:
                        c()
        """) == [
            "b0->b2 case",
            "b0->b3 case",
            "b0->b4 case",
            "b1->exit return",
            "b2->error raise",
            "b2->b1 next",
            "b3->error raise",
            "b3->b1 next",
            "b4->error raise",
            "b4->b1 next",
        ]

    def test_match_without_wildcard_keeps_fallthrough(self):
        edges = shape("""
            def f(cmd):
                match cmd:
                    case "open":
                        a()
        """)
        assert "b0->b1 case-else" in edges

    def test_headers_do_not_inherit_body_raises(self):
        # `if ok:` evaluates only the test in its own block; the call in
        # the body raises from the body's block.
        stmt = ast.parse("if ok:\n    risky()").body[0]
        assert not may_raise(stmt)
        assert [type(n).__name__ for n in header_nodes(stmt)] == ["Name"]


# -- dataflow -----------------------------------------------------------------

class TestDataflow:
    DIAMOND = """
        def f(x):
            if x:
                a()
            else:
                b()
            c()
    """

    def test_dominators_on_a_diamond(self):
        _fn, cfg = cfg_for(self.DIAMOND)
        dom = dominators(cfg)
        # Entry dominates everything; neither arm dominates the join.
        for bid in (1, 2, 3):
            assert dominates(dom, 0, bid)
        assert not dominates(dom, 1, 3)
        assert not dominates(dom, 2, 3)

    def test_immediate_dominator_of_the_join_is_the_branch(self):
        _fn, cfg = cfg_for(self.DIAMOND)
        idom = immediate_dominators(cfg)
        assert idom[3] == 0
        assert idom[cfg.entry] is None

    def test_reaching_definitions_converge_on_loop_carried_def(self):
        # `total` reaches the return both from the initialisation and
        # from the loop body via the back edge -- the fixpoint a single
        # forward pass misses.
        fn, cfg = cfg_for("""
            def f(items):
                total = 0
                for item in items:
                    total = total + item
                return total
        """)
        return_stmt = fn.body[-1]
        return_bid = cfg.block_of_stmt(return_stmt)
        assert return_bid is not None
        facts = reaching_definitions(cfg, fn)
        totals = {line for name, line in facts[return_bid]
                  if name == "total"}
        assert totals == {3, 5}
        # The parameter is a definition on the `def` line.
        assert ("items", 2) in facts[return_bid]

    def test_liveness_keeps_names_used_after_the_loop(self):
        fn, cfg = cfg_for("""
            def f(items):
                total = 0
                for item in items:
                    total = total + item
                return total
        """)
        live = liveness(cfg)
        first_bid = cfg.block_of_stmt(fn.body[0])
        assert "total" in live[first_bid]
        dead_fn, dead_cfg = cfg_for("""
            def f(items):
                total = 0
                return items
        """)
        dead_bid = dead_cfg.block_of_stmt(dead_fn.body[0])
        assert "total" not in liveness(dead_cfg)[dead_bid]


# -- RES: resource lifecycles -------------------------------------------------

class TestRes001:
    def test_bad_stream_leaked_on_one_branch(self):
        findings = findings_for("""
            class Mux:
                def serve(self, ok):
                    stream = self.conn.open_stream()
                    if ok:
                        stream.close()
                    else:
                        self.log("refused")
        """, select=["RES001"])
        assert [f.code for f in findings] == ["RES001"]
        assert findings[0].law == "H2_STREAM_LEAK"
        assert findings[0].line == 4
        trace = "\n".join(findings[0].trace)
        assert "branch `if ok:` is not taken" in trace
        assert "still held" in trace

    def test_good_released_via_interprocedural_helper(self):
        assert not findings_for("""
            class Mux:
                def serve(self, ok):
                    stream = self.conn.open_stream()
                    if ok:
                        stream.close()
                    else:
                        self._teardown(stream)

                def _teardown(self, s):
                    s.reset()
        """, select=["RES001"])

    def test_good_ownership_transfer_is_not_a_leak(self):
        # No release site anywhere: the stream is registered and kept.
        assert not findings_for("""
            class Mux:
                def serve(self):
                    stream = self.conn.open_stream()
                    self.streams.append(stream)
        """, select=["RES001"])


class TestRes002:
    def test_bad_credit_leaks_on_the_exception_path(self):
        findings = findings_for("""
            class Flow:
                def push(self, nbytes):
                    self.send_window.consume(nbytes)
                    self.transmit(nbytes)
                    self.send_window.replenish(nbytes)
        """, select=["RES002"])
        assert [f.code for f in findings] == ["RES002"]
        assert findings[0].law == "H2_CREDIT_LEAK"
        assert "exception path" in findings[0].message
        assert any("exception" in hop for hop in findings[0].trace)

    def test_good_replenish_in_finally_covers_the_raise(self):
        assert not findings_for("""
            class Flow:
                def push(self, nbytes):
                    self.send_window.consume(nbytes)
                    try:
                        self.transmit(nbytes)
                    finally:
                        self.send_window.replenish(nbytes)
        """, select=["RES002"])

    def test_good_permanent_consume_is_legal(self):
        # Credit legally returns via the peer's WINDOW_UPDATE; no
        # replenish in the function means no release intent.
        assert not findings_for("""
            class Flow:
                def push(self, nbytes):
                    self.send_window.consume(nbytes)
                    self.transmit(nbytes)
        """, select=["RES002"])


class TestRes003:
    BAD = """
        class Suite:
            def detach(self, flush):
                self.sim.probe = self._record
                if flush:
                    self.flush()
                    return
                self.sim.probe = None
    """

    def test_bad_probe_left_armed_on_the_early_return(self):
        findings = findings_for(self.BAD, select=["RES003"])
        assert [f.code for f in findings] == ["RES003"]
        assert findings[0].law == "PROBE_LIFECYCLE"
        trace = "\n".join(findings[0].trace)
        assert "branch `if flush:` is taken" in trace
        assert "returns with 'self.sim.probe' still held" in trace

    def test_fix_hint_targets_the_leaking_return(self):
        findings = findings_for(self.BAD, select=["RES003"])
        assert findings[0].fix_hint == (
            "insert_before", "7", "self.sim.probe = None")

    def test_good_disarm_in_finally_covers_every_path(self):
        # `self.flush()` may raise while the probe is armed, so the
        # disarm must sit in a finally to cover the exception edge too.
        assert not findings_for("""
            class Suite:
                def detach(self, flush):
                    self.sim.probe = self._record
                    try:
                        if flush:
                            self.flush()
                    finally:
                        self.sim.probe = None
        """, select=["RES003"])


class TestRes004:
    def test_bad_ledger_leaked_on_early_return(self):
        findings = findings_for("""
            class Sweep:
                def run(self, path, dry):
                    ledger = open_ledger(path)
                    if dry:
                        return 0
                    ledger.rotate()
                    ledger.close()
        """, select=["RES004"])
        assert [f.code for f in findings] == ["RES004"]
        assert findings[0].law == "WORKER_LEDGER_LIFECYCLE"
        trace = "\n".join(findings[0].trace)
        assert "still held" in trace

    def test_good_close_in_finally_covers_the_early_return(self):
        # The deferred-return CFG edges are what make this clean: the
        # `return` inside the try routes through the finally block.
        assert not findings_for("""
            class Sweep:
                def run(self, path):
                    ledger = open_ledger(path)
                    try:
                        return compute()
                    finally:
                        ledger.close()
        """, select=["RES004"])

    def test_good_ownership_transfer_is_not_a_leak(self):
        assert not findings_for("""
            class Sweep:
                def adopt(self, path):
                    ledger = SweepLedger(path)
                    self.ledgers.append(ledger)
        """, select=["RES004"])

    def test_bad_worker_handle_never_disposed(self):
        findings = findings_for("""
            class Pool:
                def boot(self, ctx, ok):
                    worker = spawn_worker(ctx)
                    if ok:
                        worker.dispose()
        """, select=["RES004"])
        assert [f.code for f in findings] == ["RES004"]
        assert findings[0].law == "WORKER_LEDGER_LIFECYCLE"


# -- DOS: peer-driven exhaustion ----------------------------------------------

class TestDos001:
    def test_bad_receive_loop_without_deadline(self):
        findings = findings_for("""
            class Server:
                def handle_headers(self, frame):
                    self.drain(frame)

                def drain(self, frame):
                    while True:
                        chunk = self.sock.recv_bytes()
                        if not chunk:
                            break
        """, select=["DOS001"])
        assert [f.code for f in findings] == ["DOS001"]
        assert findings[0].law == "DOS_SLOW_READ"
        assert findings[0].line == 7
        trace = "\n".join(findings[0].trace)
        assert "peer-driven dispatch enters Server.handle_headers()" \
            in trace
        assert "recv_bytes() with no timeout/deadline" in trace

    def test_good_loop_with_deadline(self):
        assert not findings_for("""
            class Server:
                def handle_headers(self, frame):
                    self.drain(frame)

                def drain(self, frame):
                    deadline = self.sim.now + 5.0
                    while self.sim.now < deadline:
                        chunk = self.sock.recv_bytes()
                        if not chunk:
                            break
        """, select=["DOS001"])

    def test_good_loop_not_dispatch_reachable(self):
        # Same shape, but nothing routes peer input into it.
        assert not findings_for("""
            class Tool:
                def drain(self, frame):
                    while True:
                        chunk = self.sock.recv_bytes()
                        if not chunk:
                            break
        """, select=["DOS001"])


class TestDos002:
    def test_bad_unbounded_append_in_event_handler(self):
        findings = findings_for("""
            class Server:
                def __init__(self):
                    self.sim.schedule(0.0, self.on_packet)

                def on_packet(self, pkt):
                    self.backlog.append(pkt)
        """, select=["DOS002"])
        assert [f.code for f in findings] == ["DOS002"]
        assert findings[0].law == "DOS_UNBOUNDED_QUEUE"
        assert findings[0].line == 7
        trace = "\n".join(findings[0].trace)
        assert "event loop enters Server.on_packet()" in trace
        assert "appended to self.backlog with no size guard" in trace

    def test_good_len_guard_bounds_the_queue(self):
        assert not findings_for("""
            class Server:
                def __init__(self):
                    self.sim.schedule(0.0, self.on_packet)

                def on_packet(self, pkt):
                    if len(self.backlog) >= self.max_depth:
                        return
                    self.backlog.append(pkt)
        """, select=["DOS002"])

    def test_good_append_of_non_peer_data(self):
        # The appended value is not derived from the handler's input.
        assert not findings_for("""
            class Server:
                def __init__(self):
                    self.sim.schedule(0.0, self.on_packet)

                def on_packet(self, pkt):
                    self.ticks.append(self.sim.now)
        """, select=["DOS002"])


class TestDos003:
    def test_bad_timer_left_armed_on_the_early_return(self):
        findings = findings_for("""
            class Conn:
                def begin(self, fast):
                    self._handshake_timer = self.sim.schedule(2.0, self._die)
                    if fast:
                        return
                    self._handshake_timer.cancel()
        """, select=["DOS003"])
        assert [f.code for f in findings] == ["DOS003"]
        assert findings[0].law == "TIMER_ARMED_NOT_CANCELLED"
        assert "not cancelled" in findings[0].message
        trace = "\n".join(findings[0].trace)
        assert "branch `if fast:` is taken" in trace
        assert "returns with 'self._handshake_timer' still held" in trace

    def test_good_cancel_on_every_path(self):
        assert not findings_for("""
            class Conn:
                def begin(self, fast):
                    self._handshake_timer = self.sim.schedule(2.0, self._die)
                    if fast:
                        self._handshake_timer.cancel()
                        return
                    self._handshake_timer.cancel()
        """, select=["DOS003"])

    def test_good_assign_none_is_a_cancel(self):
        assert not findings_for("""
            class Conn:
                def begin(self, fast):
                    self.idle_deadline = self.sim.schedule(9.0, self._die)
                    if fast:
                        self.idle_deadline = None
                        return
                    self.idle_deadline = None
        """, select=["DOS003"])

    def test_good_cancel_then_rearm_is_arm_forever(self):
        # The cancel precedes the arm: it retires the *previous* handle,
        # so this function shows no release intent for the new one (the
        # RTO-restart idiom in the TCP stack).
        assert not findings_for("""
            class Conn:
                def restart_rto(self):
                    self._rto_timer.cancel()
                    self._rto_timer = self.sim.schedule(1.0, self._on_rto)
        """, select=["DOS003"])

    def test_good_non_timer_schedule_is_not_tracked(self):
        # Plain event scheduling is not a deadline-timer acquire.
        assert not findings_for("""
            class Conn:
                def kick(self, fast):
                    handle = self.sim.schedule(0.0, self._pump)
                    if fast:
                        return
                    handle.cancel()
        """, select=["DOS003"])

"""HPACK size accounting and round-trip tests."""

import pytest

from repro.http2.hpack import (
    ENTRY_OVERHEAD,
    HpackDecoder,
    HpackEncoder,
    _integer_size,
    _string_size,
)

REQUEST = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.isidewith.com"),
    (":path", "/polls/results"),
    ("user-agent", "Mozilla/5.0 Firefox/74.0"),
    ("accept", "*/*"),
]


def test_integer_size_single_byte_below_prefix():
    assert _integer_size(5, 7) == 1
    assert _integer_size(126, 7) == 1


def test_integer_size_multi_byte():
    assert _integer_size(127, 7) == 2
    assert _integer_size(300, 7) == 3


def test_string_size_includes_length_prefix():
    assert _string_size("abcd") >= 2


def test_static_table_exact_match_is_one_byte():
    encoder = HpackEncoder()
    size, tokens = encoder.encode([(":method", "GET")])
    assert size == 1
    assert tokens[0].kind == "indexed"


def test_repeat_request_shrinks_dramatically():
    encoder = HpackEncoder()
    first = encoder.encode_size(REQUEST)
    second = encoder.encode_size(REQUEST)
    assert second < first / 3
    # Every field indexed on the repeat.
    _, tokens = encoder.encode(REQUEST)
    assert all(t.kind == "indexed" for t in tokens)


def test_distinct_paths_stay_literal():
    encoder = HpackEncoder()
    encoder.encode([(":path", "/a")])
    size, tokens = encoder.encode([(":path", "/b")])
    assert tokens[0].kind == "literal-indexed"
    assert size > 1


def test_roundtrip_through_decoder():
    encoder = HpackEncoder()
    decoder = HpackDecoder()
    for _ in range(3):
        _, tokens = encoder.encode(REQUEST)
        assert decoder.decode(tokens) == REQUEST


def test_roundtrip_multiple_header_sets():
    encoder = HpackEncoder()
    decoder = HpackDecoder()
    first = [(":path", "/one"), ("x-custom", "abc")]
    second = [(":path", "/two"), ("x-custom", "abc")]
    for headers in (first, second, first):
        _, tokens = encoder.encode(headers)
        assert decoder.decode(tokens) == headers


def test_dynamic_table_eviction():
    encoder = HpackEncoder(max_table_size=2 * ENTRY_OVERHEAD + 40)
    decoder = HpackDecoder(max_table_size=2 * ENTRY_OVERHEAD + 40)
    headers = [(f"x-{i}", f"value-{i}") for i in range(10)]
    for header in headers:
        _, tokens = encoder.encode([header])
        assert decoder.decode(tokens) == [header]
    # Early entries were evicted: re-encoding the first is literal again.
    _, tokens = encoder.encode([headers[0]])
    assert tokens[0].kind == "literal-indexed"
    assert decoder.decode(tokens) == [headers[0]]


def test_decoder_rejects_index_zero():
    from repro.http2.hpack import HpackToken
    with pytest.raises(ValueError):
        HpackDecoder().decode([HpackToken("indexed", index=0)])

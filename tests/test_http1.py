"""HTTP/1.1 baseline stack tests."""

import pytest

from repro.http1.client import Http1Client
from repro.http1.server import Http1Server, Http1ServerConfig
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology
from repro.website.objects import WebObject
from repro.website.sitemap import Site


class H1Rig:
    def __init__(self, seed=0):
        self.sim = Simulator(seed=seed)
        self.topo = StandardTopology(self.sim)
        self.site = Site("h1", "h1.example")
        for path, size in {"/a": 25_000, "/b": 14_000, "/c": 3_000}.items():
            self.site.add(WebObject(path=path, size=size))
        self.server = Http1Server(self.sim, self.topo.server, self.site)
        self.client = Http1Client(self.sim, self.topo.client, "server")
        self.ready = False
        self.client.connect(lambda: setattr(self, "ready", True))

    def run(self, duration=1.0):
        self.sim.run(until=self.sim.now + duration)


def test_connect_and_single_get():
    rig = H1Rig()
    rig.run(1.0)
    assert rig.ready
    done = []
    exchange = rig.client.request("/a", on_complete=done.append)
    rig.run(3.0)
    assert done and exchange.complete
    assert exchange.bytes_received == 25_000


def test_pipelined_responses_arrive_in_request_order():
    rig = H1Rig()
    rig.run(1.0)
    completions = []
    for path in ("/a", "/b", "/c"):
        rig.client.request(path,
                           on_complete=lambda e: completions.append(e.path))
    rig.run(5.0)
    assert completions == ["/a", "/b", "/c"]


def test_responses_never_interleave_on_wire():
    rig = H1Rig()
    rig.run(1.0)
    for path in ("/a", "/b", "/c"):
        rig.client.request(path)
    rig.run(5.0)
    body_paths = [e.object_path for e in rig.server.tx_log if e.is_body]
    runs = [body_paths[0]]
    for path in body_paths[1:]:
        if path != runs[-1]:
            runs.append(path)
    assert runs == ["/a", "/b", "/c"]


def test_request_before_connect_raises():
    rig = H1Rig()
    with pytest.raises(RuntimeError):
        rig.client.request("/a")


def test_missing_object_served_as_header_only():
    rig = H1Rig()
    rig.run(1.0)
    rig.client.request("/missing")
    rig.run(2.0)
    body = [e for e in rig.server.tx_log if e.is_body]
    assert body == []


def test_pending_tracks_outstanding():
    rig = H1Rig()
    rig.run(1.0)
    rig.client.request("/a")
    rig.client.request("/b")
    assert len(rig.client.pending()) == 2
    rig.run(5.0)
    assert rig.client.pending() == []


def test_sizes_readable_by_passive_estimator():
    """The classic HTTP/1.x story: sequential responses leak sizes."""
    from repro.core.estimator import SizeEstimator
    rig = H1Rig()
    rig.run(1.0)
    for path in ("/a", "/b", "/c"):
        rig.client.request(path)
    rig.run(5.0)
    estimates = [e.size for e in
                 SizeEstimator().estimate_from_trace(rig.topo.trace)]
    recovered = [s for s in estimates if s > 2_000]
    assert any(abs(s - 25_000) < 400 for s in recovered)
    assert any(abs(s - 14_000) < 400 for s in recovered)
    assert any(abs(s - 3_000) < 400 for s in recovered)

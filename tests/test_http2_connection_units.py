"""HTTP/2 connection-level behaviour: preface, settings, windows, batching."""

import pytest

from repro.http2 import frames as fr
from repro.http2.connection import CLIENT_PREFACE_LEN, DEFAULT_WINDOW
from repro.http2.settings import Http2Settings

from tests.test_http2_integration import H2Rig, make_site


def test_preface_and_settings_exchange():
    rig = H2Rig()
    rig.run(1.0)
    client_conn = rig.client.connection
    server_conn = rig.server.connections[0]
    assert client_conn.ready and server_conn.ready
    # Each side parsed the other's advertised settings.
    assert server_conn.peer_settings == rig.client.config.settings
    assert client_conn.peer_settings == rig.server.config.settings


def test_connection_window_bumped_beyond_default():
    rig = H2Rig()
    rig.run(1.0)
    server_conn = rig.server.connections[0]
    # The client's WINDOW_UPDATE raised the server's send credit far
    # above the RFC default of 65535.
    assert server_conn.send_window_connection.available > DEFAULT_WINDOW


def test_send_window_consumed_and_replenished():
    rig = H2Rig(site=make_site({"/big": 2_000_000}))
    rig.run(1.0)
    server_conn = rig.server.connections[0]
    before = server_conn.send_window_connection.available
    stream = rig.client.request("/big")
    rig.run(10.0)
    assert stream.complete
    after = server_conn.send_window_connection.available
    # Auto updates kept the window alive through a 2 MB transfer.
    assert after > 0
    assert before > 0


def test_request_batch_rides_one_record():
    rig = H2Rig(site=make_site({f"/x{i}": 5_000 for i in range(4)}))
    rig.run(1.0)
    conn = rig.client._tcp_conn
    written_before = conn.send_buffer.total_written
    streams = rig.client.request_batch([f"/x{i}" for i in range(4)])
    # One record appended: exactly one wire write spanning all GETs.
    assert conn.send_buffer.total_written > written_before
    assert len(streams) == 4
    rig.run(3.0)
    assert all(s.complete for s in streams)


def test_batched_requests_arrive_simultaneously_despite_spacing():
    """The batching defense: a spacing policy cannot separate GETs that
    share one record/segment."""
    from repro.core.wire import carries_request_any
    from repro.simnet.middlebox import CLIENT_TO_SERVER, SpacingPolicy

    rig = H2Rig(site=make_site({f"/x{i}": 5_000 for i in range(4)}))
    rig.run(1.0)
    rig.topo.middlebox.add_policy(SpacingPolicy(
        min_gap_s=0.5, direction=CLIENT_TO_SERVER,
        match=carries_request_any))
    streams = rig.client.request_batch([f"/x{i}" for i in range(4)])
    rig.run(5.0)
    assert all(s.complete for s in streams)
    finish_times = sorted(s.completed_at for s in streams)
    # All four complete within a whisker of each other: no 0.5 s stairs.
    assert finish_times[-1] - finish_times[0] < 0.3


def test_sequential_requests_are_spaced_by_same_policy():
    from repro.core.wire import carries_request_any
    from repro.simnet.middlebox import CLIENT_TO_SERVER, SpacingPolicy

    rig = H2Rig(site=make_site({f"/x{i}": 5_000 for i in range(4)}))
    rig.run(1.0)
    rig.topo.middlebox.add_policy(SpacingPolicy(
        min_gap_s=0.5, direction=CLIENT_TO_SERVER,
        match=carries_request_any))
    streams = [rig.client.request(f"/x{i}") for i in range(4)]
    rig.run(6.0)
    assert all(s.complete for s in streams)
    finish_times = sorted(s.completed_at for s in streams)
    assert finish_times[-1] - finish_times[0] > 1.0  # the staircase


def test_goaway_flag_visible_to_client():
    rig = H2Rig()
    rig.run(1.0)
    rig.server.connections[0].shutdown()
    rig.run(1.0)
    assert rig.client.goaway
    assert rig.client.broken


def test_duplicate_settings_records_ignored():
    rig = H2Rig()
    rig.run(1.0)
    conn = rig.client.connection
    settings_before = conn.peer_settings
    # Feed a duplicate SETTINGS dispatch (as a dup TLS delivery would).
    conn._dispatch(fr.SettingsFrame(settings={0x4: 1}), dup=True)
    assert conn.peer_settings == settings_before

"""HTTP/2 server + client integration over the standard topology."""

import pytest

from repro.http2.client import Http2Client, Http2ClientConfig
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.http2.settings import Http2Settings
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology
from repro.tcp.connection import TcpConfig
from repro.website.objects import WebObject
from repro.website.sitemap import Site


def make_site(objects=None):
    site = Site(name="test", authority="test.example")
    for path, size in (objects or {"/a": 30_000, "/b": 20_000,
                                   "/small": 900}).items():
        site.add(WebObject(path=path, size=size, cacheable=False))
    return site


class H2Rig:
    def __init__(self, seed=0, server_config=None, site=None,
                 client_settings=None):
        self.sim = Simulator(seed=seed)
        self.topo = StandardTopology(self.sim)
        self.site = site or make_site()
        self.server = Http2Server(self.sim, self.topo.server, self.site,
                                  server_config or Http2ServerConfig(),
                                  tcp_config=TcpConfig(deliver_duplicates=True))
        client_config = Http2ClientConfig(authority=self.site.authority)
        if client_settings is not None:
            client_config.settings = client_settings
        self.client = Http2Client(self.sim, self.topo.client, "server",
                                  config=client_config)
        self.ready = False
        self.client.connect(self._on_ready)

    def _on_ready(self):
        self.ready = True

    def run(self, duration=1.0):
        self.sim.run(until=self.sim.now + duration)


def test_connection_reaches_ready():
    rig = H2Rig()
    rig.run(1.0)
    assert rig.ready
    assert rig.client.connection.ready


def test_get_roundtrip_delivers_full_object():
    rig = H2Rig()
    rig.run(1.0)
    done = []
    stream = rig.client.request("/a", on_complete=done.append)
    rig.run(3.0)
    assert done and done[0] is stream
    assert stream.bytes_received == 30_000
    assert stream.status == "200"
    assert stream.content_length == 30_000


def test_unknown_path_gets_404():
    rig = H2Rig()
    rig.run(1.0)
    done = []
    stream = rig.client.request("/missing", on_complete=done.append)
    rig.run(2.0)
    assert done
    assert stream.status == "404"
    assert stream.bytes_received == 0


def test_concurrent_requests_interleave_on_the_wire():
    rig = H2Rig()
    rig.run(1.0)
    rig.client.request("/a")
    rig.client.request("/b")
    rig.run(3.0)
    entries = [e for e in rig.server.combined_tx_log() if e.is_data]
    paths_in_order = [e.object_path for e in entries]
    # Round-robin: /b frames appear before /a finished.
    first_b = paths_in_order.index("/b")
    last_a = len(paths_in_order) - 1 - paths_in_order[::-1].index("/a")
    assert first_b < last_a


def test_fifo_scheduler_serializes():
    rig = H2Rig(server_config=Http2ServerConfig(scheduler="fifo"))
    rig.run(1.0)
    rig.client.request("/a")
    rig.client.request("/b")
    rig.run(3.0)
    entries = [e for e in rig.server.combined_tx_log() if e.is_data]
    paths = [e.object_path for e in entries]
    # No interleaving: each object is one contiguous run on the wire
    # (worker spawn order decides which run comes first).
    runs = [paths[0]]
    for path in paths[1:]:
        if path != runs[-1]:
            runs.append(path)
    assert len(runs) == 2 and set(runs) == {"/a", "/b"}


def test_rst_stream_stops_delivery():
    rig = H2Rig(site=make_site({"/big": 400_000}))
    rig.run(1.0)
    stream = rig.client.request("/big")
    rig.run(0.08)
    rig.client.reset_stream(stream)
    rig.run(2.0)
    assert stream.reset
    assert stream.bytes_received < 400_000
    server_conn = rig.server.connections[0]
    assert not server_conn.stream_queues.get(stream.stream_id)


def test_reset_before_serve_suppresses_response():
    rig = H2Rig()
    rig.run(1.0)
    stream = rig.client.request("/a")
    rig.client.reset_stream(stream)
    rig.run(2.0)
    served = [e for e in rig.server.combined_tx_log()
              if e.is_data and e.stream_id == stream.stream_id]
    assert len(served) <= 1  # at most a frame raced the reset


def test_flow_control_windows_respected():
    settings = Http2Settings(initial_window_size=8_192)
    rig = H2Rig(site=make_site({"/big": 600_000}), client_settings=settings)
    rig.run(1.0)
    stream = rig.client.request("/big")
    rig.run(10.0)
    # Auto window updates keep it flowing to completion anyway.
    assert stream.complete
    assert stream.bytes_received == 600_000


def test_server_tracks_requests_received():
    rig = H2Rig()
    rig.run(1.0)
    rig.client.request("/a")
    rig.client.request("/b")
    rig.run(2.0)
    assert rig.server.connections[0].requests_received == 2


def test_padding_hook_inflates_wire_bytes():
    config = Http2ServerConfig()
    config.pad_object = lambda size, rng: size + 5_000
    rig = H2Rig(server_config=config)
    rig.run(1.0)
    stream = rig.client.request("/a")
    rig.run(3.0)
    assert stream.bytes_received == 35_000


def test_server_push_delivers_unrequested_object():
    config = Http2ServerConfig()
    config.push_map = {"/a": ["/b"]}
    rig = H2Rig(server_config=config,
                client_settings=Http2Settings(enable_push=True))
    rig.run(1.0)
    pushed = []
    rig.client.on_push = pushed.append
    rig.client.request("/a")
    rig.run(3.0)
    assert pushed and pushed[0].path == "/b"
    assert pushed[0].pushed
    assert pushed[0].complete
    assert pushed[0].bytes_received == 20_000


def test_push_disabled_without_client_opt_in():
    config = Http2ServerConfig()
    config.push_map = {"/a": ["/b"]}
    rig = H2Rig(server_config=config)  # default settings: push off
    rig.run(1.0)
    pushed = []
    rig.client.on_push = pushed.append
    rig.client.request("/a")
    rig.run(3.0)
    assert not pushed


def test_ping_is_echoed():
    from repro.http2 import frames as fr
    rig = H2Rig()
    rig.run(1.0)
    before = rig.client.connection.frames_received
    rig.client.connection.send_frame(fr.PingFrame())
    rig.run(1.0)
    assert rig.client.connection.frames_received > before


def test_tx_log_offsets_monotonic():
    rig = H2Rig()
    rig.run(1.0)
    rig.client.request("/a")
    rig.client.request("/b")
    rig.run(3.0)
    offsets = [e.tcp_offset for e in rig.server.combined_tx_log()]
    assert offsets == sorted(offsets)

"""Concurrency limits, REFUSED_STREAM retry, and GOAWAY tests."""

import pytest

from repro.http2.server import Http2ServerConfig
from repro.http2.settings import Http2Settings

from tests.test_http2_integration import H2Rig, make_site


def strict_server_config(max_streams):
    config = Http2ServerConfig()
    config.settings = Http2Settings(max_concurrent_streams=max_streams)
    return config


def test_concurrency_cap_refuses_excess_streams():
    site = make_site({f"/o{i}": 200_000 for i in range(6)})
    rig = H2Rig(site=site, server_config=strict_server_config(2))
    rig.run(1.0)
    for i in range(6):
        rig.client.request(f"/o{i}")
    rig.run(0.2)
    server_conn = rig.server.connections[0]
    assert server_conn.refused_streams > 0


def test_refused_requests_retry_to_completion():
    site = make_site({f"/o{i}": 60_000 for i in range(6)})
    rig = H2Rig(site=site, server_config=strict_server_config(2))
    rig.run(1.0)
    done = []
    for i in range(6):
        rig.client.request(f"/o{i}", on_complete=lambda s: done.append(s.path))
    rig.run(20.0)
    assert sorted(done) == sorted(f"/o{i}" for i in range(6))
    assert rig.client.refused_retries > 0


def test_cap_never_hit_with_roomy_limit():
    rig = H2Rig()
    rig.run(1.0)
    rig.client.request("/a")
    rig.client.request("/b")
    rig.run(3.0)
    assert rig.server.connections[0].refused_streams == 0
    assert rig.client.refused_retries == 0


def test_goaway_finishes_inflight_and_refuses_new():
    rig = H2Rig(site=make_site({"/big": 300_000, "/late": 10_000}))
    rig.run(1.0)
    done = []
    rig.client.request("/big", on_complete=lambda s: done.append(s.path))
    rig.run(0.05)
    rig.server.connections[0].shutdown()
    rig.run(0.2)
    late = rig.client.request("/late")
    rig.run(10.0)
    # The in-flight stream completes; the post-GOAWAY one is refused and
    # never retried (the client saw GOAWAY).
    assert done == ["/big"]
    assert rig.client.goaway
    assert late.reset and not late.complete


def test_shutdown_is_idempotent():
    rig = H2Rig()
    rig.run(1.0)
    conn = rig.server.connections[0]
    conn.shutdown()
    frames_after_first = conn.frames_sent
    conn.shutdown()
    assert conn.frames_sent == frames_after_first

"""HTTP/2 frame sizes, settings, flow control, stream states, priority,
and scheduler unit tests."""

import pytest

from repro.http2 import frames as fr
from repro.http2.errors import ErrorCode, Http2ProtocolError, StreamError
from repro.http2.flow_control import (
    MAX_WINDOW,
    FlowControlWindow,
    ReceiveWindowManager,
)
from repro.http2.priority import PriorityTree
from repro.http2.scheduler import (
    FifoScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
    make_scheduler,
)
from repro.http2.settings import Http2Settings
from repro.http2.stream import StreamState


# -- frames -----------------------------------------------------------------

def test_frame_wire_sizes():
    assert fr.DataFrame(stream_id=1, length=1000).wire_size == 1009
    assert fr.RstStreamFrame(stream_id=1).wire_size == 13
    assert fr.GoAwayFrame().wire_size == 17
    assert fr.WindowUpdateFrame(increment=1).wire_size == 13
    assert fr.PingFrame().wire_size == 17
    assert fr.PriorityFrame(stream_id=3).wire_size == 14


def test_headers_frame_size_with_priority():
    plain = fr.HeadersFrame(stream_id=1, header_block_len=50)
    weighted = fr.HeadersFrame(stream_id=1, header_block_len=50,
                               priority_weight=16)
    assert weighted.wire_size == plain.wire_size + 5


def test_settings_frame_sizes():
    assert fr.SettingsFrame(ack=True).wire_size == 9
    assert fr.SettingsFrame(settings={1: 1, 2: 2}).wire_size == 9 + 12


def test_push_promise_size():
    frame = fr.PushPromiseFrame(stream_id=1, promised_stream_id=2,
                                header_block_len=30)
    assert frame.wire_size == 9 + 4 + 30


# -- settings ---------------------------------------------------------------

def test_settings_roundtrip():
    settings = Http2Settings(initial_window_size=123_456, enable_push=True,
                             max_concurrent_streams=7)
    parsed = Http2Settings.from_wire(settings.to_wire())
    assert parsed == settings


def test_settings_partial_wire_keeps_defaults():
    parsed = Http2Settings.from_wire({0x4: 999})
    assert parsed.initial_window_size == 999
    assert parsed.max_frame_size == Http2Settings().max_frame_size


# -- flow control -------------------------------------------------------------

def test_window_consume_and_replenish():
    window = FlowControlWindow(1000)
    window.consume(400)
    assert window.available == 600
    window.replenish(200)
    assert window.available == 800


def test_window_overdraft_raises():
    window = FlowControlWindow(100)
    with pytest.raises(Http2ProtocolError):
        window.consume(101)


def test_window_overflow_raises():
    window = FlowControlWindow(MAX_WINDOW)
    with pytest.raises(Http2ProtocolError):
        window.replenish(1)


def test_window_update_must_be_positive():
    window = FlowControlWindow(10)
    with pytest.raises(Http2ProtocolError):
        window.replenish(0)


def test_receive_manager_emits_update_past_threshold():
    manager = ReceiveWindowManager(1000, update_divisor=4)
    assert manager.on_data(200) == 0
    increment = manager.on_data(100)
    assert increment == 300
    assert manager.consumed == 0


# -- stream state machine -------------------------------------------------------

def test_request_response_lifecycle():
    client = StreamState(1)
    client.on_send_headers(end_stream=True)
    assert client.state == "half-closed-local"
    client.on_recv_headers()
    client.on_recv_data(100, end_stream=True)
    assert client.is_closed
    assert client.bytes_received == 100


def test_server_side_lifecycle():
    server = StreamState(1)
    server.on_recv_headers(end_stream=True)
    assert server.state == "half-closed-remote"
    server.on_send_headers()
    server.on_send_data(500, end_stream=True)
    assert server.is_closed
    assert server.bytes_sent == 500


def test_data_on_idle_stream_is_error():
    stream = StreamState(1)
    with pytest.raises(StreamError):
        stream.on_send_data(10)


def test_reset_closes_stream():
    stream = StreamState(1)
    stream.on_recv_headers()
    stream.on_recv_rst(int(ErrorCode.CANCEL))
    assert stream.is_closed and stream.was_reset


def test_frames_after_reset_tolerated():
    stream = StreamState(1)
    stream.on_recv_headers()
    stream.on_recv_rst(8)
    stream.on_recv_data(10)  # no raise
    stream.on_recv_headers()  # no raise


# -- priority tree ----------------------------------------------------------------

def test_single_stream_gets_full_share():
    tree = PriorityTree()
    tree.add_stream(1)
    assert tree.effective_weight(1) == pytest.approx(1.0)


def test_sibling_shares_proportional_to_weight():
    tree = PriorityTree()
    tree.add_stream(1, weight=32)
    tree.add_stream(3, weight=96)
    assert tree.effective_weight(1) == pytest.approx(0.25)
    assert tree.effective_weight(3) == pytest.approx(0.75)


def test_dependency_splits_parent_share():
    tree = PriorityTree()
    tree.add_stream(1, weight=16)
    tree.add_stream(3, depends_on=1, weight=16)
    assert tree.effective_weight(3) == pytest.approx(1.0)  # only child of 1


def test_exclusive_adoption():
    tree = PriorityTree()
    tree.add_stream(1)
    tree.add_stream(3)
    tree.add_stream(5, exclusive=True)
    # 5 adopted 1 and 3; they now share 5's allocation.
    assert tree.effective_weight(5) == pytest.approx(1.0)
    assert tree.effective_weight(1) == pytest.approx(0.5)


def test_remove_promotes_children():
    tree = PriorityTree()
    tree.add_stream(1)
    tree.add_stream(3, depends_on=1)
    tree.remove_stream(1)
    assert tree.effective_weight(3) == pytest.approx(1.0)


def test_unknown_parent_treated_as_root():
    tree = PriorityTree()
    tree.add_stream(5, depends_on=99)
    assert tree.effective_weight(5) == pytest.approx(1.0)


def test_weight_bounds():
    tree = PriorityTree()
    with pytest.raises(ValueError):
        tree.add_stream(1, weight=0)
    with pytest.raises(ValueError):
        tree.add_stream(1, weight=257)


def test_self_dependency_rejected():
    tree = PriorityTree()
    with pytest.raises(ValueError):
        tree.add_stream(1, depends_on=1)


def test_scheduling_weights_normalized():
    tree = PriorityTree()
    tree.add_stream(1, weight=10)
    tree.add_stream(3, weight=30)
    weights = tree.scheduling_weights([1, 3])
    assert sum(weights.values()) == pytest.approx(1.0)


# -- schedulers -------------------------------------------------------------------

def test_round_robin_rotates():
    scheduler = RoundRobinScheduler()
    picks = [scheduler.pick([1, 3, 5]) for _ in range(6)]
    assert picks == [1, 3, 5, 1, 3, 5]


def test_round_robin_skips_missing():
    scheduler = RoundRobinScheduler()
    assert scheduler.pick([1, 3, 5]) == 1
    assert scheduler.pick([5]) == 5
    assert scheduler.pick([1, 3, 5]) == 1


def test_fifo_serves_oldest_to_completion():
    scheduler = FifoScheduler()
    assert scheduler.pick([1, 3]) == 1
    assert scheduler.pick([1, 3]) == 1
    scheduler.on_stream_done(1)
    assert scheduler.pick([3]) == 3


def test_weighted_respects_ratios():
    tree = PriorityTree()
    tree.add_stream(1, weight=16)
    tree.add_stream(3, weight=48)
    scheduler = WeightedScheduler(tree)
    picks = [scheduler.pick([1, 3]) for _ in range(100)]
    share_three = picks.count(3) / len(picks)
    assert share_three == pytest.approx(0.75, abs=0.05)


def test_weighted_is_deterministic():
    def run():
        tree = PriorityTree()
        tree.add_stream(1, weight=10)
        tree.add_stream(3, weight=20)
        scheduler = WeightedScheduler(tree)
        return [scheduler.pick([1, 3]) for _ in range(30)]

    assert run() == run()


def test_make_scheduler_factory():
    assert make_scheduler("round-robin").name == "round-robin"
    assert make_scheduler("fifo").name == "fifo"
    assert make_scheduler("weighted").name == "weighted"
    with pytest.raises(ValueError):
        make_scheduler("lifo")

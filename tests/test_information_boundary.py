"""The adversary's information boundary, enforced structurally.

The paper's adversary is non-intrusive: cleartext headers and sizes
only.  These tests pin the boundary down so refactors cannot quietly
hand the attack code ground truth.  The structural pins are backed by
the interprocedural LEAK taint pass (repro.lint.taint): the mutation
test below injects a synthetic leak into a fixture observer and proves
LEAK001 catches it with the exact multi-hop ``via`` trace, so the
boundary holds even for flows the token scan cannot see.
"""

import dataclasses
import inspect
import textwrap

import pytest

from repro.simnet.packet import RecordInfo, TcpWireView, WireView


def test_wireview_fields_are_cleartext_only():
    field_names = {f.name for f in dataclasses.fields(WireView)}
    assert field_names == {"pid", "src", "dst", "size", "tcp", "records",
                           "is_retransmit"}


def test_recordinfo_carries_no_plaintext():
    field_names = {f.name for f in dataclasses.fields(RecordInfo)}
    # Header-derivable facts only: no payload, no object reference.
    assert field_names == {"record_id", "content_type", "record_wire_len",
                           "bytes_in_packet", "is_start", "is_end"}
    assert "payload" not in field_names


def test_tcp_view_has_no_payload_reference():
    field_names = {f.name for f in dataclasses.fields(TcpWireView)}
    assert "slices" not in field_names
    assert "payload" not in field_names


@pytest.mark.parametrize("module_name", [
    "repro.core.observer",
    "repro.core.controller",
    "repro.core.estimator",
    "repro.core.predictor",
    "repro.core.planner",
    "repro.core.deinterleave",
    "repro.core.wire",
])
def test_adversary_modules_never_import_ground_truth(module_name):
    """Attack-side modules must not read the server's transmission log,
    website objects, or frame plaintext."""
    import importlib
    module = importlib.import_module(module_name)
    source = inspect.getsource(module)
    forbidden = (
        "tx_log",                      # server ground truth
        "object_ref",                  # frame attribution
        "repro.website",               # site internals
        "frame.headers",               # plaintext header dicts
        "record.payload",              # record plaintext
    )
    for token in forbidden:
        assert token not in source, (module_name, token)


def test_metrics_module_is_evaluation_only():
    """The degree metric is allowed to read ground truth -- and the
    attack pipeline must not call it."""
    import inspect

    import repro.core.adversary as adversary
    source = inspect.getsource(adversary)
    assert "degree_of_multiplexing" not in source


def test_quic_wire_view_is_opaque():
    from repro.quic.frames import QuicPacket, StreamFrame
    from repro.simnet.packet import Packet
    packet = Packet(src="a", dst="b", size=100,
                    segment=QuicPacket(frames=(StreamFrame(0, 0, 50),)))
    view = packet.wire_view()
    assert view.tcp is None
    assert view.records == ()
    assert not view.is_retransmit


# -- mutation test: the static boundary actually bites ------------------------

#: A faithful observer shape, with one injected leak: the handler reads
#: ``obj.size`` off the ground-truth WebObject instead of ``view.size``
#: off the sanctioned wire view.
_LEAKY_OBSERVER = textwrap.dedent("""\
    from repro.website.objects import WebObject


    class TrafficMonitor:
        def __init__(self):
            self._census = []

        def on_transit(self, view, obj: WebObject):
            if view.size > 0:
                self._census.append(obj.size)
""")


def test_injected_leak_is_caught_by_leak001_with_exact_trace():
    """Mutation test: hand a fixture observer ground truth and the
    taint pass must fail it -- with the full source->branch->sink via
    trace, not just a line number."""
    from repro.lint import lint_source
    findings = lint_source(_LEAKY_OBSERVER, "repro.core.observer",
                           path="observer.py", select=["LEAK001"])
    (finding,) = findings
    assert finding.code == "LEAK001"
    assert finding.law == "ADV_INFO_BOUNDARY"
    assert (finding.line, finding.col) == (10, 12)
    assert finding.trace == (
        "observer.py:8: parameter 'obj' of TrafficMonitor.on_transit() "
        "is typed WebObject (ground truth)",
        "observer.py:9: branch `if view.size > 0:` is taken",
        "observer.py:10: ground truth flows into self._census "
        "(adversary state)",
    )


def test_repaired_observer_passes_leak001():
    """The same fixture reading the sanctioned wire view instead is
    clean: the mutation test fails for the right reason."""
    from repro.lint import lint_source
    repaired = _LEAKY_OBSERVER.replace("obj.size", "view.size")
    assert lint_source(repaired, "repro.core.observer",
                       path="observer.py", select=["LEAK001"]) == []

"""The adversary's information boundary, enforced structurally.

The paper's adversary is non-intrusive: cleartext headers and sizes
only.  These tests pin the boundary down so refactors cannot quietly
hand the attack code ground truth.
"""

import dataclasses
import inspect

import pytest

from repro.simnet.packet import RecordInfo, TcpWireView, WireView


def test_wireview_fields_are_cleartext_only():
    field_names = {f.name for f in dataclasses.fields(WireView)}
    assert field_names == {"pid", "src", "dst", "size", "tcp", "records",
                           "is_retransmit"}


def test_recordinfo_carries_no_plaintext():
    field_names = {f.name for f in dataclasses.fields(RecordInfo)}
    # Header-derivable facts only: no payload, no object reference.
    assert field_names == {"record_id", "content_type", "record_wire_len",
                           "bytes_in_packet", "is_start", "is_end"}
    assert "payload" not in field_names


def test_tcp_view_has_no_payload_reference():
    field_names = {f.name for f in dataclasses.fields(TcpWireView)}
    assert "slices" not in field_names
    assert "payload" not in field_names


@pytest.mark.parametrize("module_name", [
    "repro.core.observer",
    "repro.core.controller",
    "repro.core.estimator",
    "repro.core.predictor",
    "repro.core.planner",
    "repro.core.deinterleave",
    "repro.core.wire",
])
def test_adversary_modules_never_import_ground_truth(module_name):
    """Attack-side modules must not read the server's transmission log,
    website objects, or frame plaintext."""
    import importlib
    module = importlib.import_module(module_name)
    source = inspect.getsource(module)
    forbidden = (
        "tx_log",                      # server ground truth
        "object_ref",                  # frame attribution
        "repro.website",               # site internals
        "frame.headers",               # plaintext header dicts
        "record.payload",              # record plaintext
    )
    for token in forbidden:
        assert token not in source, (module_name, token)


def test_metrics_module_is_evaluation_only():
    """The degree metric is allowed to read ground truth -- and the
    attack pipeline must not call it."""
    import inspect

    import repro.core.adversary as adversary
    source = inspect.getsource(adversary)
    assert "degree_of_multiplexing" not in source


def test_quic_wire_view_is_opaque():
    from repro.quic.frames import QuicPacket, StreamFrame
    from repro.simnet.packet import Packet
    packet = Packet(src="a", dst="b", size=100,
                    segment=QuicPacket(frames=(StreamFrame(0, 0, 50),)))
    view = packet.wire_view()
    assert view.tcp is None
    assert view.records == ()
    assert not view.is_retransmit

"""Runtime invariant monitors: catching laws we deliberately break,
staying silent (and byte-identical) on healthy runs, and the two
in-tree bugs the monitors flushed out."""

import pytest

from repro.core.phases import AttackConfig
from repro.experiments.session import SessionConfig, run_session
from repro.faults import FaultEvent, FaultPlan
from repro.http2 import flow_control
from repro.http2.hpack import HpackEncoder
from repro.invariants import (
    HpackViolation,
    InvariantViolation,
    LinkViolation,
    MonitorSuite,
    Violation,
)
from repro.simnet.engine import Simulator
from repro.simnet.link import Link, LinkConfig


def _noop():
    pass


# -- regression: the two bugs the monitors found in-tree --------------------

def test_clock_does_not_jump_past_pending_events_on_max_events_break():
    """``run(until=..., max_events=...)`` used to advance the clock to
    ``until`` even when unexecuted events remained before it; the next
    ``run`` then executed them with a backwards-moving clock."""
    sim = Simulator(seed=0)
    sim.schedule_at(1.0, _noop)
    sim.schedule_at(2.0, _noop)
    sim.run(until=5.0, max_events=1)
    assert sim.now < 2.0  # must not have jumped past the t=2.0 event
    observed = []
    sim.probe = lambda when, cb: observed.append(when)
    sim.run(until=5.0)
    assert observed == [2.0]
    assert sim.now == 5.0


def test_clock_still_advances_to_until_when_queue_is_drained():
    sim = Simulator(seed=0)
    sim.schedule_at(1.0, _noop)
    sim.run(until=5.0)
    assert sim.now == 5.0


def _wired_link(sim, config, delivered):
    link = Link(sim, "l", config)
    link.attach(delivered.append)
    return link


class _Packet:
    def __init__(self, size):
        self.size = size


def test_set_down_drops_packets_still_queued_behind_the_transmitter():
    """Queued-not-yet-serialized packets used to survive ``set_down``
    and arrive through a down link, contradicting the documented
    contract (their bits never reached the wire)."""
    sim = Simulator(seed=0)
    # 8 kbit/s: a 1000 B packet takes 1 s to serialize, so the second
    # packet is still queued when the link goes down at t=0.5.
    config = LinkConfig(bandwidth_bps=8_000.0, propagation_s=0.001)
    delivered = []
    link = _wired_link(sim, config, delivered)
    assert link.send(_Packet(1000))
    assert link.send(_Packet(1000))
    sim.schedule_at(0.5, link.set_down)
    sim.run(until=10.0)
    assert delivered == []  # neither packet was fully serialized
    assert link.stats.dropped_down == 2
    assert link.queue_depth_bytes() == 0
    assert link.stats.sent == (link.stats.delivered + link.stats.dropped_loss
                               + link.stats.dropped_queue
                               + link.stats.dropped_down)


def test_set_down_still_delivers_fully_serialized_packets():
    sim = Simulator(seed=0)
    config = LinkConfig(bandwidth_bps=8_000.0, propagation_s=2.0)
    delivered = []
    link = _wired_link(sim, config, delivered)
    assert link.send(_Packet(1000))  # serialized at t=1.0, arrives t=3.0
    sim.schedule_at(1.5, link.set_down)
    sim.run(until=10.0)
    assert len(delivered) == 1  # its bits were on the wire
    assert link.stats.dropped_down == 0


# -- monitors catch deliberately broken laws --------------------------------

def test_link_monitor_catches_conservation_breach():
    sim = Simulator(seed=0)
    delivered = []
    link = _wired_link(sim, LinkConfig(), delivered)
    suite = MonitorSuite(mode="raise")
    suite.attach(sim)
    suite.attach_link(link)
    assert link.send(_Packet(500))
    sim.run(until=1.0)
    link.stats.sent += 3  # tamper: inject bytes the link never saw
    with pytest.raises(LinkViolation) as excinfo:
        link.send(_Packet(500))
    assert excinfo.value.violation.code == "LINK_CONSERVATION"
    assert "link l" in excinfo.value.violation.where


def test_link_monitor_collect_mode_keeps_running():
    sim = Simulator(seed=0)
    link = _wired_link(sim, LinkConfig(), [])
    suite = MonitorSuite(mode="collect")
    suite.attach(sim)
    suite.attach_link(link)
    link.stats.sent += 3
    assert link.send(_Packet(500))
    sim.run(until=1.0)
    codes = {v.code for v in suite.finalize()}
    assert "LINK_CONSERVATION" in codes


def test_clock_monitor_flags_backwards_event():
    suite = MonitorSuite(mode="collect")
    sim = Simulator(seed=0)
    suite.attach(sim)
    sim.probe(1.0, _noop)
    sim.probe(0.5, _noop)  # time travel
    assert [v.code for v in suite.violations] == ["CLOCK_BACKWARD"]


def test_hpack_monitor_flags_table_out_of_bounds():
    suite = MonitorSuite(mode="collect")
    encoder = HpackEncoder(max_table_size=4096)
    suite.watch_hpack("enc", encoder)
    encoder._dynamic.size = 4097  # tamper past the capacity
    suite.check_hpack_tables()
    assert [v.code for v in suite.violations] == ["HPACK_TABLE_BOUNDS"]


def test_flow_control_overgrant_mutation_is_caught(monkeypatch):
    """A deliberately broken receive-window branch (granting credit for
    bytes never consumed) must trip the HTTP/2 window monitor."""
    orig = flow_control.ReceiveWindowManager.on_data

    def overgrant(self, nbytes):
        increment = orig(self, nbytes)
        return increment + 70_000 if increment else increment

    monkeypatch.setattr(flow_control.ReceiveWindowManager, "on_data",
                        overgrant)
    with pytest.raises(InvariantViolation) as excinfo:
        run_session(SessionConfig(seed=3, monitors=True))
    assert excinfo.value.violation.code in (
        "H2_STREAM_WINDOW_OVERGRANT", "H2_CONN_WINDOW_OVERGRANT",
        "H2_STREAM_WINDOW_EXCEEDS_INITIAL", "H2_CONN_WINDOW_EXCEEDS_INITIAL")


# -- healthy runs: silent, and byte-identical to unarmed runs ---------------

def test_monitored_session_runs_clean():
    result = run_session(SessionConfig(seed=7, monitors=True))
    assert result.monitor is not None
    assert result.monitor.violations == []
    assert result.load is not None and result.load.success


def test_monitored_faulted_attacked_session_runs_clean():
    plan = FaultPlan((
        FaultEvent("link_down", at_s=0.4, duration_s=0.3,
                   target="mbox->server"),
        FaultEvent("server_stall", at_s=1.2, duration_s=0.5),
    ))
    result = run_session(SessionConfig(
        seed=9, attack=AttackConfig(), faults=plan.to_jsonable(),
        monitors=True))
    assert result.monitor.violations == []


def _session_fingerprint(monitors: bool):
    result = run_session(SessionConfig(seed=11, attack=AttackConfig(),
                                       monitors=monitors))
    tx = [(e.time, e.stream_id, e.object_path, e.serve_id, e.tcp_offset,
           e.length) for e in result.tx_log]
    return (tx, result.duration_s, result.processed_events,
            result.report.predicted_labels)


def test_armed_run_is_byte_identical_to_unarmed_run():
    """Monitors only observe: arming them must not change a single
    event, byte or attack outcome."""
    assert _session_fingerprint(False) == _session_fingerprint(True)


def test_unarmed_probes_default_to_none():
    sim = Simulator(seed=0)
    link = Link(sim, "l", LinkConfig())
    assert sim.probe is None and link.probe is None


# -- taxonomy ---------------------------------------------------------------

def test_violation_renders_and_roundtrips():
    violation = Violation(code="LINK_CONSERVATION", domain="link",
                          at_s=1.25, where="link l",
                          message="sent=2 != ...", recent=("t=1.0s x",))
    assert "LINK_CONSERVATION" in violation.oneline()
    data = violation.to_jsonable()
    assert data["code"] == "LINK_CONSERVATION"
    assert data["recent"] == ["t=1.0s x"]
    error = LinkViolation(violation)
    assert isinstance(error, InvariantViolation)
    assert isinstance(error, AssertionError)
    assert error.violation is violation

"""Link model tests: serialization, propagation, loss, queues, FIFO."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Link, LinkConfig, exponential_jitter, uniform_jitter
from repro.simnet.packet import Packet


def make_link(sim, **kwargs):
    link = Link(sim, "test", LinkConfig(**kwargs))
    arrivals = []
    link.attach(lambda pkt: arrivals.append((sim.now, pkt)))
    return link, arrivals


def test_propagation_delay_applied():
    sim = Simulator()
    link, arrivals = make_link(sim, bandwidth_bps=8e9, propagation_s=0.01)
    link.send(Packet(src="a", dst="b", size=1000))
    sim.run()
    # 1000 bytes at 8 Gbps = 1 microsecond serialization + 10 ms prop.
    assert arrivals[0][0] == pytest.approx(0.010001, abs=1e-6)


def test_serialization_time_scales_with_size():
    sim = Simulator()
    link, arrivals = make_link(sim, bandwidth_bps=8e6, propagation_s=0.0)
    link.send(Packet(src="a", dst="b", size=1000))
    sim.run()
    # 8000 bits at 8 Mbps = 1 ms.
    assert arrivals[0][0] == pytest.approx(0.001)


def test_back_to_back_packets_queue_behind_each_other():
    sim = Simulator()
    link, arrivals = make_link(sim, bandwidth_bps=8e6, propagation_s=0.0)
    for _ in range(3):
        link.send(Packet(src="a", dst="b", size=1000))
    sim.run()
    times = [t for t, _ in arrivals]
    assert times == pytest.approx([0.001, 0.002, 0.003])


def test_random_loss_drops_packets():
    sim = Simulator(seed=3)
    link, arrivals = make_link(sim, loss_rate=0.5)
    sent = 400
    for _ in range(sent):
        link.send(Packet(src="a", dst="b", size=100))
    sim.run()
    assert link.stats.dropped_loss > 0
    assert len(arrivals) == sent - link.stats.dropped_loss
    # Roughly half should survive.
    assert 0.35 * sent < len(arrivals) < 0.65 * sent


def test_full_queue_tail_drops():
    sim = Simulator()
    link, arrivals = make_link(sim, bandwidth_bps=8e3,
                               buffer_bytes=2500)
    accepted = [link.send(Packet(src="a", dst="b", size=1000))
                for _ in range(5)]
    sim.run()
    assert accepted == [True, True, False, False, False]
    assert link.stats.dropped_queue == 3
    assert len(arrivals) == 2


def test_fifo_preserved_under_jitter_by_default():
    sim = Simulator(seed=1)
    link, arrivals = make_link(sim, bandwidth_bps=1e9,
                               jitter=exponential_jitter(0.01))
    packets = [Packet(src="a", dst="b", size=100) for _ in range(50)]
    for pkt in packets:
        link.send(pkt)
    sim.run()
    received_ids = [p.pid for _, p in arrivals]
    assert received_ids == [p.pid for p in packets]


def test_reordering_possible_when_enabled():
    sim = Simulator(seed=1)
    link, arrivals = make_link(sim, bandwidth_bps=1e9,
                               jitter=uniform_jitter(0.0, 0.05),
                               allow_reorder=True)
    packets = [Packet(src="a", dst="b", size=100) for _ in range(50)]
    for pkt in packets:
        link.send(pkt)
    sim.run()
    received_ids = [p.pid for _, p in arrivals]
    assert received_ids != [p.pid for p in packets]
    assert sorted(received_ids) == sorted(p.pid for p in packets)


def test_send_without_receiver_raises():
    sim = Simulator()
    link = Link(sim, "orphan", LinkConfig())
    with pytest.raises(RuntimeError):
        link.send(Packet(src="a", dst="b", size=100))


def test_stats_counters():
    sim = Simulator()
    link, _ = make_link(sim)
    for _ in range(4):
        link.send(Packet(src="a", dst="b", size=500))
    sim.run()
    assert link.stats.sent == 4
    assert link.stats.delivered == 4
    assert link.stats.bytes_delivered == 2000


def test_down_link_blackholes_new_packets():
    sim = Simulator()
    link, arrivals = make_link(sim)
    link.set_down()
    assert link.send(Packet(src="a", dst="b", size=100)) is False
    sim.run()
    assert arrivals == []
    assert link.stats.dropped_down == 1
    link.set_up()
    assert link.send(Packet(src="a", dst="b", size=100)) is True
    sim.run()
    assert len(arrivals) == 1


def test_set_down_is_idempotent_and_counts_flaps():
    sim = Simulator()
    link, _ = make_link(sim)
    link.set_down()
    link.set_down()
    assert link.flaps == 1
    assert not link.up
    link.set_up()
    link.set_up()
    assert link.up
    link.set_down()
    assert link.flaps == 2


def test_in_flight_packets_survive_a_flap():
    # The bits are already on the wire when the link goes down: the
    # packet still arrives, only later offers are blackholed.
    sim = Simulator()
    link, arrivals = make_link(sim, bandwidth_bps=8e6, propagation_s=0.05)
    link.send(Packet(src="a", dst="b", size=1000))  # arrives at 0.051
    sim.schedule_at(0.01, link.set_down)
    sim.run()
    assert len(arrivals) == 1
    assert link.stats.dropped_down == 0
    assert link.stats.delivered == 1


def test_queue_depth_tracks_backlog():
    sim = Simulator()
    link, _ = make_link(sim, bandwidth_bps=8e3)
    link.send(Packet(src="a", dst="b", size=1000))
    link.send(Packet(src="a", dst="b", size=1000))
    assert link.queue_depth_bytes() == 2000
    sim.run()
    assert link.queue_depth_bytes() == 0

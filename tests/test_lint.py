"""The determinism & layering linter (repro.lint).

Per-rule positive/negative fixture snippets, suppression handling,
output formats, CLI exit codes -- and the gating self-check: the shipped
tree must lint clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.lint import (
    ALL_CODES,
    RULES,
    UNKNOWN_CODE,
    UNUSED_CODE,
    lint_paths,
    lint_source,
    module_name_for,
    resolve_codes,
)

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
REPO_SRC = os.path.dirname(PACKAGE_ROOT)


def findings_for(source: str, module: str = "repro.simnet.fixture",
                 **kwargs):
    return lint_source(textwrap.dedent(source), module, **kwargs)


def codes(source: str, module: str = "repro.simnet.fixture", **kwargs):
    return [finding.code for finding in findings_for(source, module,
                                                     **kwargs)]


# -- rule catalogue sanity ----------------------------------------------------

def test_all_rule_families_are_registered():
    assert set(ALL_CODES) == {
        "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
        "SIM001", "SIM002", "CACHE001", "CACHE002",
        "PROTO001", "PROTO002", "PERF001", "PERF002",
        "RES001", "RES002", "RES003", "RES004", "DOS001", "DOS002",
        "DOS003", "LEAK001", "LEAK002", "LEAK003",
    }
    for code in ALL_CODES:
        assert RULES[code]


# -- DET001: set iteration ----------------------------------------------------

class TestDet001:
    def test_bad_for_loop_over_set_variable(self):
        # The PR-1 browser bug class: ordering re-requests by iterating
        # a set makes the run depend on hash randomization.
        bad = """
            def rerequest(needed):
                residue = set(needed)
                order = []
                for path in residue:
                    order.append(path)
                return order
        """
        assert codes(bad) == ["DET001"]

    def test_bad_self_attribute_set_comprehended_into_list(self):
        bad = """
            class Browser:
                def __init__(self, plan):
                    self._needed = set(plan)

                def order(self):
                    return [path for path in self._needed]
        """
        assert codes(bad) == ["DET001"]

    def test_bad_list_materializes_set_expression(self):
        bad = """
            def merge(a, b):
                joined = set(a) | set(b)
                return list(joined)
        """
        assert codes(bad) == ["DET001"]

    def test_good_sorted_iteration_and_membership(self):
        good = """
            def rerequest(needed):
                residue = set(needed)
                order = [path for path in sorted(residue)]
                if "x" in residue:
                    order.append("x")
                return order
        """
        assert codes(good) == []

    def test_good_order_insensitive_consumers(self):
        good = """
            def stats(xs):
                seen = set(xs)
                return len(seen), sum(seen), min(seen), max(seen), \\
                    all(x > 0 for x in seen)
        """
        assert codes(good) == []


# -- DET002: wall clock -------------------------------------------------------

class TestDet002:
    def test_bad_wall_clock_in_simulation_layer(self):
        bad = """
            import time

            def delay():
                return time.time()
        """
        assert codes(bad) == ["DET002"]

    def test_bad_from_import_alias(self):
        bad = """
            from time import perf_counter as clock

            def delay():
                return clock()
        """
        assert codes(bad, module="repro.http2.fixture") == ["DET002"]

    def test_good_runner_telemetry_is_allowlisted(self):
        allowed = """
            import time

            def measure():
                return time.perf_counter()
        """
        assert codes(allowed, module="repro.experiments.runner") == []

    def test_good_simulated_clock(self):
        good = """
            def delay(sim):
                return sim.now
        """
        assert codes(good) == []


# -- DET003: global random state ---------------------------------------------

class TestDet003:
    def test_bad_global_random_call(self):
        bad = """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
        """
        assert codes(bad) == ["DET003"]

    def test_bad_function_level_import_random(self):
        # The idiom the linter converges the tree on: module-level
        # import + seeded random.Random (website/generator.py).
        bad = """
            def build(seed):
                import random
                return random.Random(seed)
        """
        assert codes(bad, module="repro.website.fixture") == ["DET003"]

    def test_bad_numpy_global_state(self):
        bad = """
            import numpy as np

            def noise():
                return np.random.rand(4)
        """
        assert codes(bad, module="repro.analysis.fixture") == ["DET003"]

    def test_good_seeded_streams(self):
        good = """
            import random
            import numpy as np

            def build(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng, gen
        """
        assert codes(good, module="repro.website.fixture") == []


# -- DET004: layering ---------------------------------------------------------

class TestDet004:
    def test_bad_substrate_importing_experiments(self):
        bad = "from repro.experiments.session import run_session\n"
        assert codes(bad, module="repro.simnet.fixture") == ["DET004"]

    def test_bad_transport_importing_application_relatively(self):
        bad = "from ..browser import browser\n"
        assert codes(bad, module="repro.tcp.fixture") == ["DET004"]

    def test_bad_protocol_importing_analysis(self):
        bad = "from repro.core.observer import WireView\n"
        assert codes(bad, module="repro.http2.fixture") == ["DET004"]

    def test_good_downward_and_same_layer_imports(self):
        good = """
            from repro.simnet.engine import Simulator
            from repro.tcp.connection import TcpStack
            from repro.http2.frames import DataFrame
        """
        assert codes(good, module="repro.experiments.fixture") == []

    def test_good_unmapped_modules_are_exempt(self):
        assert codes("import os\n", module="not_in_the_map") == []

    def test_good_bench_is_interface_tooling(self):
        # The bench suite measures the whole stack, analyzer included,
        # so it sits in the interface layer and may import the linter.
        good = "from repro.lint.engine import lint_paths\n"
        assert codes(good, module="repro.bench.fixture") == []


# -- DET005: shared mutable state --------------------------------------------

class TestDet005:
    def test_bad_class_level_dict(self):
        bad = """
            class Registry:
                entries = {}
        """
        assert codes(bad) == ["DET005"]

    def test_bad_module_level_accumulator(self):
        assert codes("_cache = {}\n") == ["DET005"]

    def test_bad_mutable_default_argument(self):
        bad = """
            def record(event, log=[]):
                log.append(event)
                return log
        """
        assert codes(bad) == ["DET005"]

    def test_good_init_built_state_and_constant_table(self):
        good = """
            SIZES = {"html": 2048}

            class Registry:
                def __init__(self):
                    self.entries = {}
        """
        assert codes(good) == []

    def test_good_dataclass_default_factory(self):
        good = """
            from dataclasses import dataclass, field
            from typing import Dict

            @dataclass
            class Meta:
                extra: Dict[str, int] = field(default_factory=dict)
        """
        assert codes(good) == []


# -- DET006: simulated-time equality ------------------------------------------

class TestDet006:
    def test_bad_equality_on_now(self):
        bad = """
            def fired(sim, deadline):
                return sim.now == deadline
        """
        assert codes(bad) == ["DET006"]

    def test_bad_inequality_on_timestamp_field(self):
        bad = """
            def same(event, other):
                return event.requested_at != other.requested_at
        """
        assert codes(bad) == ["DET006"]

    def test_good_ordering_comparisons(self):
        good = """
            def due(sim, deadline):
                return sim.now >= deadline and sim.now - deadline < 1e-9
        """
        assert codes(good) == []


# -- suppressions -------------------------------------------------------------

class TestSuppressions:
    def test_inline_suppression_silences_the_finding(self):
        source = """
            def rerequest(needed):
                residue = set(needed)
                out = []
                for path in residue:  # repro-lint: ignore[DET001]
                    out.append(path)
                return out
        """
        assert codes(source) == []

    def test_suppression_is_code_specific(self):
        source = """
            def rerequest(needed):
                residue = set(needed)
                out = []
                for path in residue:  # repro-lint: ignore[DET002]
                    out.append(path)
                return out
        """
        assert sorted(codes(source)) == ["DET001", UNUSED_CODE]

    def test_unused_suppression_is_reported(self):
        assert codes("x = 1  # repro-lint: ignore[DET003]\n") == [UNUSED_CODE]

    def test_unused_suppression_for_deselected_rule_is_silent(self):
        source = "x = 1  # repro-lint: ignore[DET003]\n"
        findings = lint_source(source, "repro.simnet.fixture",
                               ignore=["DET003"])
        assert findings == []

    def test_marker_inside_string_literal_is_not_a_suppression(self):
        source = """
            def doc(needed):
                text = "# repro-lint: ignore[DET001]"
                residue = set(needed)
                return [p for p in residue]
        """
        assert codes(source) == ["DET001"]


# -- select / ignore ----------------------------------------------------------

def test_select_and_ignore_narrow_the_rule_set():
    source = """
        import random

        def f():
            x = random.uniform(0, 1)
            return random.Random(int(x))
    """
    assert codes(source, select=["DET003"]) == ["DET003"]
    assert codes(source, ignore=["DET003"]) == []


def test_unknown_codes_are_rejected():
    with pytest.raises(ValueError):
        resolve_codes(select=["DET999"])
    with pytest.raises(ValueError):
        resolve_codes(ignore=["NOPE"])


# -- engine: files, module names, JSON ---------------------------------------

def test_module_name_resolution_walks_packages():
    engine_py = os.path.join(PACKAGE_ROOT, "simnet", "engine.py")
    assert module_name_for(engine_py) == "repro.simnet.engine"
    init_py = os.path.join(PACKAGE_ROOT, "simnet", "__init__.py")
    assert module_name_for(init_py) == "repro.simnet"


def test_lint_paths_reports_over_files(tmp_path):
    bad = tmp_path / "bad_fixture.py"
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 1
    assert [f.code for f in report.findings] == ["DET002"]
    payload = report.to_dict()
    assert payload["version"] == 1
    assert payload["summary"] == {"total": 1, "by_code": {"DET002": 1},
                                  "baselined": 0, "stale_baseline": 0,
                                  "stale_entries": [],
                                  "pruned_baseline": 0}
    finding = payload["findings"][0]
    # trace/law are omitted when empty so the schema is stable for
    # intraprocedural findings.
    assert set(finding) == {"path", "line", "col", "code", "message"}
    assert finding["line"] == 5


def test_syntax_errors_are_findings_not_crashes(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    report = lint_paths([str(broken)])
    assert [f.code for f in report.findings] == ["E999"]


# -- the gating self-check ----------------------------------------------------

def test_repro_package_lints_clean():
    """`repro lint src/repro` exits 0: the shipped tree honours its own
    determinism contract."""
    report = lint_paths([PACKAGE_ROOT])
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings)
    assert report.files_checked > 90


def test_cli_exit_codes_and_json(tmp_path):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    clean = subprocess.run(
        [sys.executable, "-m", "repro.lint", PACKAGE_ROOT,
         "--format", "json"],
        capture_output=True, text=True, env=env)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    payload = json.loads(clean.stdout)
    assert payload["findings"] == []

    bad = tmp_path / "bad_fixture.py"
    bad.write_text("registry = {}\n")
    dirty = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(bad)],
        capture_output=True, text=True, env=env)
    assert dirty.returncode == 1
    assert "DET005" in dirty.stdout

    usage = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(bad),
         "--select", "DET999"],
        capture_output=True, text=True, env=env)
    assert usage.returncode == 2


# -- interprocedural DET001: sets escaping through helpers --------------------

class TestInterproceduralDet001:
    def test_bad_set_returned_by_helper_iterated_elsewhere(self):
        # The tentpole case: the set is built in a utility and iterated
        # order-sensitively in a different function; the per-file visitor
        # of PR 2 could not see across the call.
        bad = """
            def residue(needed):
                return set(needed)

            def rerequest(needed):
                order = []
                for path in residue(needed):
                    order.append(path)
                return order
        """
        findings = findings_for(bad)
        assert [f.code for f in findings] == ["DET001"]
        assert findings[0].trace, "interprocedural finding must carry " \
                                  "the escape path"
        assert any("residue" in hop for hop in findings[0].trace)

    def test_bad_escape_through_two_helpers_binds_a_name(self):
        bad = """
            def inner(xs):
                return set(xs)

            def outer(xs):
                return inner(xs)

            def consume(xs):
                leaked = outer(xs)
                return list(leaked)
        """
        findings = findings_for(bad)
        assert [f.code for f in findings] == ["DET001"]
        trace = "\n".join(findings[0].trace)
        assert "outer" in trace and "inner" in trace

    def test_bad_cross_module_escape_path_has_file_hops(self, tmp_path):
        (tmp_path / "util.py").write_text(textwrap.dedent("""
            def residue(needed):
                return set(needed)
        """))
        (tmp_path / "consumer.py").write_text(textwrap.dedent("""
            from util import residue

            def rerequest(needed):
                return [p for p in residue(needed)]
        """))
        report = lint_paths([str(tmp_path)])
        assert [f.code for f in report.findings] == ["DET001"]
        trace = "\n".join(report.findings[0].trace)
        assert "util.py" in trace

    def test_good_sorted_wrap_of_helper_call(self):
        good = """
            def residue(needed):
                return set(needed)

            def rerequest(needed):
                return [p for p in sorted(residue(needed))]
        """
        assert codes(good) == []


# -- SIM: simulated-past scheduling and probe guards --------------------------

class TestSim001:
    def test_bad_negative_literal_delay(self):
        findings = findings_for("""
            def arm(sim, cb):
                sim.schedule(-0.5, cb)
        """)
        assert [f.code for f in findings] == ["SIM001"]
        assert findings[0].law == "CLOCK_BACKWARD"

    def test_bad_schedule_at_now_minus(self):
        findings = findings_for("""
            def arm(sim, cb):
                sim.schedule_at(sim.now - 1.0, cb)
        """)
        assert [f.code for f in findings] == ["SIM001"]
        assert findings[0].law == "CLOCK_BACKWARD"

    def test_good_forward_scheduling(self):
        good = """
            def arm(sim, cb, delay):
                sim.schedule(0.25, cb)
                sim.schedule(delay, cb)
                sim.schedule_at(sim.now + delay, cb)
        """
        assert codes(good) == []


class TestSim002:
    def test_bad_unguarded_probe_invocation(self):
        findings = findings_for("""
            def fire(conn, frame):
                conn.probe(frame)
        """)
        assert [f.code for f in findings] == ["SIM002"]
        assert "is not None" in findings[0].message

    def test_bad_unguarded_frame_probe(self):
        assert codes("""
            def fire(server, frame):
                server.frame_probe(frame)
        """) == ["SIM002"]

    def test_good_guarded_invocation(self):
        good = """
            def fire(conn, frames):
                if conn.probe is not None:
                    for frame in frames:
                        conn.probe(frame)
        """
        assert codes(good) == []

    def test_good_truthiness_guard(self):
        good = """
            def fire(conn, frame):
                if conn.probe:
                    conn.probe(frame)
        """
        assert codes(good) == []

    def test_guard_does_not_leak_into_else_branch(self):
        bad = """
            def fire(conn, frame):
                if conn.probe is not None:
                    pass
                else:
                    conn.probe(frame)
        """
        assert codes(bad) == ["SIM002"]


# -- CACHE: cell-function purity ----------------------------------------------

_CELL_PREAMBLE = textwrap.dedent("""
    from repro.experiments.runner import RunSpec

    CELL = "repro.experiments.fixture:run_cell"
    SPEC = RunSpec.make(CELL, seed=1)
""")


def cell_source(body: str) -> str:
    """Preamble registering run_cell as a RunSpec cell, plus ``body``."""
    return _CELL_PREAMBLE + textwrap.dedent(body)


class TestCache001:
    def test_bad_env_read_through_helper(self):
        bad = cell_source("""
            import os

            def helper():
                return os.getenv("HOME")

            def run_cell(seed):
                return helper()
        """)
        findings = findings_for(bad, module="repro.experiments.fixture")
        assert [f.code for f in findings] == ["CACHE001"]
        assert findings[0].trace, "cell-reachability witness expected"
        assert any("run_cell" in hop for hop in findings[0].trace)

    def test_bad_open_and_environ_subscript(self):
        bad = cell_source("""
            import os

            def run_cell(seed):
                with open("params.json") as fh:
                    data = fh.read()
                return data, os.environ["HOME"]
        """)
        assert codes(bad, module="repro.experiments.fixture") \
            == ["CACHE001", "CACHE001"]

    def test_good_env_read_outside_cell_reach(self):
        good = cell_source("""
            import os

            def harness_only():
                return os.getenv("HOME")

            def run_cell(seed):
                return seed * 2
        """)
        assert codes(good, module="repro.experiments.fixture") == []

    def test_good_runner_module_is_allowlisted(self):
        good = """
            import os

            CELL = "repro.experiments.runner:run_cell"

            def run_cell(seed):
                return os.getenv("REPRO_CACHE_DIR")
        """
        assert codes(good, module="repro.experiments.runner") == []


class TestCache002:
    def test_bad_global_statement_in_cell(self):
        bad = cell_source("""
            _counter = 0

            def run_cell(seed):
                global _counter
                _counter += 1
                return _counter
        """)
        assert codes(bad, module="repro.experiments.fixture",
                     select=["CACHE002"]) == ["CACHE002"]

    def test_bad_module_dict_mutation_in_cell(self):
        bad = cell_source("""
            _memo = {}

            def run_cell(seed):
                _memo[seed] = seed * 2
                return _memo[seed]
        """)
        findings = findings_for(bad, module="repro.experiments.fixture",
                                select=["CACHE002"])
        assert [f.code for f in findings] == ["CACHE002"]
        assert findings[0].trace

    def test_good_local_state_in_cell(self):
        good = cell_source("""
            def run_cell(seed):
                memo = {}
                memo[seed] = seed * 2
                return memo[seed]
        """)
        assert codes(good, module="repro.experiments.fixture",
                     select=["CACHE002"]) == []


# -- PROTO: static counterparts of the runtime laws ---------------------------

class TestProto001:
    def test_bad_unchecked_consume_chain(self):
        bad = """
            def transmit(window, nbytes):
                window.consume(nbytes)

            def entry(window, nbytes):
                transmit(window, nbytes)
        """
        findings = findings_for(bad)
        assert [f.code for f in findings] == ["PROTO001"]
        assert findings[0].law == "H2_WINDOW_NEGATIVE"
        assert findings[0].trace, "unchecked caller chain expected"

    def test_good_check_dominates_the_chain(self):
        good = """
            def transmit(window, nbytes):
                window.consume(nbytes)

            def entry(window, nbytes):
                if window.can_send(nbytes):
                    transmit(window, nbytes)
        """
        assert codes(good) == []

    def test_good_check_inside_the_consuming_function(self):
        good = """
            def transmit(window, nbytes):
                if not window.can_send(nbytes):
                    return
                window.consume(nbytes)
        """
        assert codes(good) == []

    def test_bad_consume_on_the_unchecked_else_branch(self):
        # Regression for the pre-CFG engine's false negative: the old
        # reverse-BFS marked a whole function "checked" as soon as it
        # contained a can_send() call anywhere, so a consume() sitting
        # on the *else* branch of that very check sailed through.  True
        # dominance catches it: the else block is not dominated by the
        # check's true-successor.
        bad = """
            class Conn:
                def send(self, window, nbytes):
                    if window.can_send(nbytes):
                        self.transmit(window, nbytes)
                    else:
                        window.consume(nbytes)

                def transmit(self, window, nbytes):
                    window.consume(nbytes)
        """
        findings = findings_for(bad)
        assert [f.code for f in findings] == ["PROTO001"]
        assert findings[0].law == "H2_WINDOW_NEGATIVE"
        # The flagged consume is the else-branch one (line 7 of the
        # dedented fixture), not the dominated one inside transmit().
        assert findings[0].line == 7

    def test_good_consume_on_the_checked_then_branch(self):
        good = """
            class Conn:
                def send(self, window, nbytes):
                    if window.can_send(nbytes):
                        window.consume(nbytes)
                    else:
                        self.refuse()
        """
        assert codes(good) == []


class TestProto002:
    def test_bad_data_frame_after_reset_transition(self):
        findings = findings_for("""
            def teardown(stream, conn, frame):
                stream.reset = True
                conn.send_data_frame(frame)
        """)
        assert [f.code for f in findings] == ["PROTO002"]
        assert findings[0].law == "H2_DATA_ON_RESET_STREAM"

    def test_bad_headers_after_closed_state(self):
        bad = """
            def teardown(stream, conn, fr):
                stream.state = CLOSED
                conn.send_frame(HeadersFrame(stream_id=1, block=b""))
        """
        assert codes(bad) == ["PROTO002"]

    def test_good_rst_stream_teardown_is_exempt(self):
        # client.reset_stream's legal shape: flag the stream, then tell
        # the peer with RST_STREAM.
        good = """
            def reset(stream, conn):
                stream.reset = True
                conn.send_frame(RstStreamFrame(stream_id=1, error_code=8))
        """
        assert codes(good) == []

    def test_good_emission_before_the_transition(self):
        # The dup-serve shape (paper Fig. 4): transmit, then let the
        # state machine advance.
        good = """
            def transmit(stream, conn, frame):
                conn.send_data_frame(frame)
                stream.reset = True
        """
        assert codes(good) == []


# -- PERF: event-loop hot paths -----------------------------------------------

class TestPerf:
    def test_bad_pop0_in_event_reachable_method(self):
        findings = findings_for("""
            class Loop:
                def __init__(self, sim):
                    self.queue = []
                    sim.schedule(0.1, self._tick)

                def _tick(self):
                    item = self.queue.pop(0)
                    return item
        """)
        assert [f.code for f in findings] == ["PERF001"]
        assert findings[0].trace, "event-reachability witness expected"

    def test_bad_linear_membership_in_event_reachable_method(self):
        findings = findings_for("""
            class Loop:
                def __init__(self, sim):
                    self.done = []
                    sim.schedule(0.1, self._tick)

                def _tick(self):
                    return "x" in self.done
        """)
        assert [f.code for f in findings] == ["PERF002"]

    def test_good_not_event_reachable(self):
        good = """
            class Offline:
                def __init__(self):
                    self.queue = []

                def drain(self):
                    return self.queue.pop(0)
        """
        assert codes(good) == []

    def test_good_experiments_layer_is_exempt(self):
        good = """
            def tabulate(sim, rows):
                sim.schedule(0.1, lambda: None)
                while rows:
                    rows.pop(0)
        """
        assert codes(good, module="repro.experiments.fixture") == []

    def test_good_deque_popleft_and_set_membership(self):
        good = """
            from collections import deque

            class Loop:
                def __init__(self, sim):
                    self.queue = deque()
                    self.done = set()
                    sim.schedule(0.1, self._tick)

                def _tick(self):
                    item = self.queue.popleft()
                    return item in self.done
        """
        assert codes(good) == []


# -- suppression granularity (SUP001 per code, SUP002 unknown) ----------------

class TestSuppressionGranularity:
    def test_partially_used_multi_code_suppression_warns_per_code(self):
        source = """
            def rerequest(needed):
                residue = set(needed)
                out = []
                for path in residue:  # repro-lint: ignore[DET001,DET005]
                    out.append(path)
                return out
        """
        findings = findings_for(source)
        assert [f.code for f in findings] == [UNUSED_CODE]
        assert "DET005" in findings[0].message

    def test_unknown_code_in_suppression_is_flagged(self):
        source = """
            def rerequest(needed):
                residue = set(needed)
                out = []
                for path in residue:  # repro-lint: ignore[DET001,DET9X]
                    out.append(path)
                return out
        """
        findings = findings_for(source)
        assert [f.code for f in findings] == [UNKNOWN_CODE]
        assert "DET9X" in findings[0].message

    def test_fully_unused_multi_code_suppression_warns_for_each(self):
        findings = findings_for(
            "x = 1  # repro-lint: ignore[DET002,DET003]\n")
        assert [f.code for f in findings] == [UNUSED_CODE, UNUSED_CODE]
        messages = " ".join(f.message for f in findings)
        assert "DET002" in messages and "DET003" in messages


# -- encoding robustness (E902) -----------------------------------------------

class TestEncoding:
    def test_non_utf8_file_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"# caf\xe9\nx = 1\n")
        report = lint_paths([str(bad)])
        assert [f.code for f in report.findings] == ["E902"]
        assert "UTF-8" in report.findings[0].message

    def test_bom_file_is_flagged_and_still_linted(self, tmp_path):
        bom = tmp_path / "bom.py"
        bom.write_bytes(b"\xef\xbb\xbfimport time\n\n\n"
                        b"def f():\n    return time.time()\n")
        report = lint_paths([str(bom)])
        assert sorted(f.code for f in report.findings) \
            == ["DET002", "E902"]

    def test_cli_exits_nonzero_on_bad_encoding(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"# caf\xe9\n")
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad)],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 1
        assert "E902" in proc.stdout


# -- JSON golden for interprocedural payloads ---------------------------------

def test_json_payload_carries_trace_and_law(tmp_path):
    fixture = tmp_path / "proto_fixture.py"
    fixture.write_text(textwrap.dedent("""
        def transmit(window, nbytes):
            window.consume(nbytes)

        def entry(window, nbytes):
            transmit(window, nbytes)
    """))
    report = lint_paths([str(fixture)])
    payload = report.to_dict()
    (finding,) = payload["findings"]
    assert finding["code"] == "PROTO001"
    assert finding["law"] == "H2_WINDOW_NEGATIVE"
    assert isinstance(finding["trace"], list) and finding["trace"]


# -- autofix ------------------------------------------------------------------

class TestAutofix:
    def test_det001_sorted_wrap_round_trips(self, tmp_path):
        from repro.lint.autofix import fix_paths
        fixture = tmp_path / "needs_sort.py"
        fixture.write_text(textwrap.dedent("""
            def rerequest(needed):
                residue = set(needed)
                out = []
                for path in residue:
                    out.append(path)
                return out
        """))
        fixed = fix_paths([str(fixture)])
        assert sum(fixed.values()) == 1
        text = fixture.read_text()
        assert "for path in sorted(residue):" in text
        assert lint_paths([str(fixture)]).findings == []

    def test_sim002_guard_insertion_round_trips(self, tmp_path):
        from repro.lint.autofix import fix_paths
        fixture = tmp_path / "needs_guard.py"
        fixture.write_text(textwrap.dedent("""
            def fire(conn, frame):
                conn.probe(frame)
        """))
        fixed = fix_paths([str(fixture)])
        assert sum(fixed.values()) == 1
        text = fixture.read_text()
        assert "if conn.probe is not None:" in text
        assert "        conn.probe(frame)" in text
        assert lint_paths([str(fixture)]).findings == []

    def test_fix_is_idempotent_on_clean_files(self, tmp_path):
        from repro.lint.autofix import fix_paths
        fixture = tmp_path / "clean.py"
        original = "def f(xs):\n    return sorted(set(xs))\n"
        fixture.write_text(original)
        assert fix_paths([str(fixture)]) == {}
        assert fixture.read_text() == original

    def test_cli_fix_flag(self, tmp_path):
        fixture = tmp_path / "needs_sort.py"
        fixture.write_text("def f(xs):\n"
                           "    s = set(xs)\n"
                           "    return list(s)\n")
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture), "--fix"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "sorted(s)" in fixture.read_text()

    def test_res003_disarm_insertion_round_trips(self, tmp_path):
        from repro.lint.autofix import fix_paths
        fixture = tmp_path / "probe_leak.py"
        fixture.write_text(textwrap.dedent("""
            class Suite:
                def detach(self, flush):
                    self.sim.probe = self._record
                    if flush:
                        return
                    self.sim.probe = None
        """))
        fixed = fix_paths([str(fixture)], select=["RES003"])
        assert sum(fixed.values()) == 1
        text = fixture.read_text()
        # The disarm lands before the leaking return, at its indent.
        assert "            self.sim.probe = None\n" \
               "            return\n" in text
        assert lint_paths([str(fixture)],
                          select=["RES003"]).findings == []

    def test_res003_exception_exit_has_no_mechanical_fix(self, tmp_path):
        # A leak through an exception edge needs a try/finally; the
        # rule emits no fix_hint and --fix must leave the file alone.
        from repro.lint.autofix import fix_paths
        fixture = tmp_path / "probe_leak.py"
        original = textwrap.dedent("""
            class Suite:
                def detach(self):
                    self.sim.probe = self._record
                    self.flush()
                    self.sim.probe = None
        """)
        fixture.write_text(original)
        report = lint_paths([str(fixture)], select=["RES003"])
        assert [f.code for f in report.findings] == ["RES003"]
        assert report.findings[0].fix_hint == ()
        assert fix_paths([str(fixture)], select=["RES003"]) == {}
        assert fixture.read_text() == original


# -- baseline workflow --------------------------------------------------------

class TestBaseline:
    def test_write_then_filter_then_stale(self, tmp_path):
        fixture = tmp_path / "legacy.py"
        fixture.write_text("registry = {}\n")
        baseline = tmp_path / "baseline.json"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        wrote = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture),
             "--write-baseline", str(baseline)],
            capture_output=True, text=True, env=env)
        assert wrote.returncode == 0, wrote.stdout + wrote.stderr
        assert baseline.is_file()

        report = lint_paths([str(fixture)],
                            baseline_path=str(baseline))
        assert report.findings == []
        assert report.baselined == 1
        assert report.stale_baseline == 0

        fixture.write_text("registry = None\n")
        report = lint_paths([str(fixture)],
                            baseline_path=str(baseline))
        assert report.findings == []
        assert report.baselined == 0
        assert report.stale_baseline == 1

    def test_baseline_does_not_absorb_new_findings(self, tmp_path):
        fixture = tmp_path / "legacy.py"
        fixture.write_text("registry = {}\n")
        baseline = tmp_path / "baseline.json"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture),
             "--write-baseline", str(baseline)],
            capture_output=True, text=True, env=env)
        fixture.write_text("registry = {}\nother = {}\n")
        report = lint_paths([str(fixture)],
                            baseline_path=str(baseline))
        assert [f.code for f in report.findings] == ["DET005"]
        assert report.baselined == 1

    def test_missing_baseline_is_a_usage_error(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path),
             "--baseline", str(tmp_path / "nope.json")],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 2

    def test_prune_baseline_drops_stale_entries(self, tmp_path):
        fixture = tmp_path / "legacy.py"
        fixture.write_text("registry = {}\nother = {}\n")
        baseline = tmp_path / "baseline.json"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture),
             "--write-baseline", str(baseline)],
            capture_output=True, text=True, env=env)
        # Fix one of the two baselined findings; its entry goes stale.
        fixture.write_text("registry = {}\nother = None\n")
        report = lint_paths([str(fixture)], baseline_path=str(baseline))
        assert report.stale_baseline == 1
        assert len(report.stale_entries) == 1
        path, code, context, count = report.stale_entries[0]
        assert (code, context, count) == ("DET005", "other = {}", 1)

        report = lint_paths([str(fixture)], baseline_path=str(baseline),
                            prune_baseline=True)
        assert report.pruned_baseline == 1
        payload = json.loads(baseline.read_text())
        assert [e["context"] for e in payload["entries"]] \
            == ["registry = {}"]
        # The pruned file still absorbs the surviving finding.
        report = lint_paths([str(fixture)], baseline_path=str(baseline))
        assert report.findings == []
        assert report.baselined == 1
        assert report.stale_baseline == 0

    def test_prune_without_baseline_is_a_usage_error(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path),
             "--prune-baseline"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 2
        assert "--prune-baseline requires --baseline" in proc.stderr

    def test_stats_names_stale_entries(self, tmp_path):
        fixture = tmp_path / "legacy.py"
        fixture.write_text("registry = {}\n")
        baseline = tmp_path / "baseline.json"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture),
             "--write-baseline", str(baseline)],
            capture_output=True, text=True, env=env)
        fixture.write_text("registry = None\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture),
             "--baseline", str(baseline), "--stats"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "stale: " in proc.stdout
        assert "'registry = {}'" in proc.stdout


# -- SARIF export -------------------------------------------------------------

class TestSarif:
    def test_round_trip_pins_the_scanning_contract(self, tmp_path):
        from repro.lint.sarif import SARIF_VERSION, to_sarif
        fixture = tmp_path / "bad.py"
        fixture.write_text("import time\n\n\ndef f():\n"
                           "    return time.time()\n")
        report = lint_paths([str(fixture)])
        doc = json.loads(json.dumps(to_sarif(report), sort_keys=True))
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert set(ALL_CODES) <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "DET002"
        assert result["ruleId"] in rule_ids
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 5, "startColumn": 12}
        uri = result["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert uri.endswith("bad.py")

    def test_trace_becomes_a_code_flow(self):
        from repro.lint.sarif import to_sarif
        from repro.lint.findings import LintReport
        findings = findings_for("""
            class Suite:
                def detach(self, flush):
                    self.sim.probe = self._record
                    if flush:
                        return
                    self.sim.probe = None
        """, select=["RES003"])
        doc = to_sarif(LintReport(findings=findings, files_checked=1))
        (result,) = doc["runs"][0]["results"]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locations) == len(findings[0].trace)
        notes = [loc["location"]["message"]["text"] for loc in locations]
        assert any("branch `if flush:` is taken" in n for n in notes)
        assert result["properties"]["law"] == "PROBE_LIFECYCLE"

    def test_cli_sarif_flag_writes_the_file(self, tmp_path):
        fixture = tmp_path / "bad.py"
        fixture.write_text("import time\n\n\ndef f():\n"
                           "    return time.time()\n")
        out = tmp_path / "out.sarif"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture),
             "--sarif", str(out)],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 1
        doc = json.loads(out.read_text())
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] \
            == ["DET002"]

    def test_clean_run_still_writes_a_valid_document(self, tmp_path):
        fixture = tmp_path / "clean.py"
        fixture.write_text("def f(xs):\n    return sorted(set(xs))\n")
        out = tmp_path / "out.sarif"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(fixture),
             "--sarif", str(out)],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"]


# -- zero-argument invocation -------------------------------------------------

def test_zero_arg_lint_defaults_to_package_root(tmp_path):
    """`repro lint` with no paths lints the installed package, from any
    working directory."""
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--stats"],
        capture_output=True, text=True, env=env, cwd=str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout
    assert "per-rule summary" in proc.stdout


def test_zero_arg_via_repro_cli(tmp_path):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        capture_output=True, text=True, env=env, cwd=str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout

"""The determinism & layering linter (repro.lint).

Per-rule positive/negative fixture snippets, suppression handling,
output formats, CLI exit codes -- and the gating self-check: the shipped
tree must lint clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.lint import (
    ALL_CODES,
    RULES,
    UNUSED_CODE,
    lint_paths,
    lint_source,
    module_name_for,
    resolve_codes,
)

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
REPO_SRC = os.path.dirname(PACKAGE_ROOT)


def codes(source: str, module: str = "repro.simnet.fixture", **kwargs):
    findings = lint_source(textwrap.dedent(source), module, **kwargs)
    return [finding.code for finding in findings]


# -- rule catalogue sanity ----------------------------------------------------

def test_all_six_rules_are_registered():
    assert set(ALL_CODES) == {"DET001", "DET002", "DET003", "DET004",
                              "DET005", "DET006"}
    for code in ALL_CODES:
        assert RULES[code]


# -- DET001: set iteration ----------------------------------------------------

class TestDet001:
    def test_bad_for_loop_over_set_variable(self):
        # The PR-1 browser bug class: ordering re-requests by iterating
        # a set makes the run depend on hash randomization.
        bad = """
            def rerequest(needed):
                residue = set(needed)
                order = []
                for path in residue:
                    order.append(path)
                return order
        """
        assert codes(bad) == ["DET001"]

    def test_bad_self_attribute_set_comprehended_into_list(self):
        bad = """
            class Browser:
                def __init__(self, plan):
                    self._needed = set(plan)

                def order(self):
                    return [path for path in self._needed]
        """
        assert codes(bad) == ["DET001"]

    def test_bad_list_materializes_set_expression(self):
        bad = """
            def merge(a, b):
                joined = set(a) | set(b)
                return list(joined)
        """
        assert codes(bad) == ["DET001"]

    def test_good_sorted_iteration_and_membership(self):
        good = """
            def rerequest(needed):
                residue = set(needed)
                order = [path for path in sorted(residue)]
                if "x" in residue:
                    order.append("x")
                return order
        """
        assert codes(good) == []

    def test_good_order_insensitive_consumers(self):
        good = """
            def stats(xs):
                seen = set(xs)
                return len(seen), sum(seen), min(seen), max(seen), \\
                    all(x > 0 for x in seen)
        """
        assert codes(good) == []


# -- DET002: wall clock -------------------------------------------------------

class TestDet002:
    def test_bad_wall_clock_in_simulation_layer(self):
        bad = """
            import time

            def delay():
                return time.time()
        """
        assert codes(bad) == ["DET002"]

    def test_bad_from_import_alias(self):
        bad = """
            from time import perf_counter as clock

            def delay():
                return clock()
        """
        assert codes(bad, module="repro.http2.fixture") == ["DET002"]

    def test_good_runner_telemetry_is_allowlisted(self):
        allowed = """
            import time

            def measure():
                return time.perf_counter()
        """
        assert codes(allowed, module="repro.experiments.runner") == []

    def test_good_simulated_clock(self):
        good = """
            def delay(sim):
                return sim.now
        """
        assert codes(good) == []


# -- DET003: global random state ---------------------------------------------

class TestDet003:
    def test_bad_global_random_call(self):
        bad = """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
        """
        assert codes(bad) == ["DET003"]

    def test_bad_function_level_import_random(self):
        # The idiom the linter converges the tree on: module-level
        # import + seeded random.Random (website/generator.py).
        bad = """
            def build(seed):
                import random
                return random.Random(seed)
        """
        assert codes(bad, module="repro.website.fixture") == ["DET003"]

    def test_bad_numpy_global_state(self):
        bad = """
            import numpy as np

            def noise():
                return np.random.rand(4)
        """
        assert codes(bad, module="repro.analysis.fixture") == ["DET003"]

    def test_good_seeded_streams(self):
        good = """
            import random
            import numpy as np

            def build(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng, gen
        """
        assert codes(good, module="repro.website.fixture") == []


# -- DET004: layering ---------------------------------------------------------

class TestDet004:
    def test_bad_substrate_importing_experiments(self):
        bad = "from repro.experiments.session import run_session\n"
        assert codes(bad, module="repro.simnet.fixture") == ["DET004"]

    def test_bad_transport_importing_application_relatively(self):
        bad = "from ..browser import browser\n"
        assert codes(bad, module="repro.tcp.fixture") == ["DET004"]

    def test_bad_protocol_importing_analysis(self):
        bad = "from repro.core.observer import WireView\n"
        assert codes(bad, module="repro.http2.fixture") == ["DET004"]

    def test_good_downward_and_same_layer_imports(self):
        good = """
            from repro.simnet.engine import Simulator
            from repro.tcp.connection import TcpStack
            from repro.http2.frames import DataFrame
        """
        assert codes(good, module="repro.experiments.fixture") == []

    def test_good_unmapped_modules_are_exempt(self):
        assert codes("import os\n", module="not_in_the_map") == []


# -- DET005: shared mutable state --------------------------------------------

class TestDet005:
    def test_bad_class_level_dict(self):
        bad = """
            class Registry:
                entries = {}
        """
        assert codes(bad) == ["DET005"]

    def test_bad_module_level_accumulator(self):
        assert codes("_cache = {}\n") == ["DET005"]

    def test_bad_mutable_default_argument(self):
        bad = """
            def record(event, log=[]):
                log.append(event)
                return log
        """
        assert codes(bad) == ["DET005"]

    def test_good_init_built_state_and_constant_table(self):
        good = """
            SIZES = {"html": 2048}

            class Registry:
                def __init__(self):
                    self.entries = {}
        """
        assert codes(good) == []

    def test_good_dataclass_default_factory(self):
        good = """
            from dataclasses import dataclass, field
            from typing import Dict

            @dataclass
            class Meta:
                extra: Dict[str, int] = field(default_factory=dict)
        """
        assert codes(good) == []


# -- DET006: simulated-time equality ------------------------------------------

class TestDet006:
    def test_bad_equality_on_now(self):
        bad = """
            def fired(sim, deadline):
                return sim.now == deadline
        """
        assert codes(bad) == ["DET006"]

    def test_bad_inequality_on_timestamp_field(self):
        bad = """
            def same(event, other):
                return event.requested_at != other.requested_at
        """
        assert codes(bad) == ["DET006"]

    def test_good_ordering_comparisons(self):
        good = """
            def due(sim, deadline):
                return sim.now >= deadline and sim.now - deadline < 1e-9
        """
        assert codes(good) == []


# -- suppressions -------------------------------------------------------------

class TestSuppressions:
    def test_inline_suppression_silences_the_finding(self):
        source = """
            def rerequest(needed):
                residue = set(needed)
                out = []
                for path in residue:  # repro-lint: ignore[DET001]
                    out.append(path)
                return out
        """
        assert codes(source) == []

    def test_suppression_is_code_specific(self):
        source = """
            def rerequest(needed):
                residue = set(needed)
                out = []
                for path in residue:  # repro-lint: ignore[DET002]
                    out.append(path)
                return out
        """
        assert sorted(codes(source)) == ["DET001", UNUSED_CODE]

    def test_unused_suppression_is_reported(self):
        assert codes("x = 1  # repro-lint: ignore[DET003]\n") == [UNUSED_CODE]

    def test_unused_suppression_for_deselected_rule_is_silent(self):
        source = "x = 1  # repro-lint: ignore[DET003]\n"
        findings = lint_source(source, "repro.simnet.fixture",
                               ignore=["DET003"])
        assert findings == []

    def test_marker_inside_string_literal_is_not_a_suppression(self):
        source = """
            def doc(needed):
                text = "# repro-lint: ignore[DET001]"
                residue = set(needed)
                return [p for p in residue]
        """
        assert codes(source) == ["DET001"]


# -- select / ignore ----------------------------------------------------------

def test_select_and_ignore_narrow_the_rule_set():
    source = """
        import random

        def f():
            x = random.uniform(0, 1)
            return random.Random(int(x))
    """
    assert codes(source, select=["DET003"]) == ["DET003"]
    assert codes(source, ignore=["DET003"]) == []


def test_unknown_codes_are_rejected():
    with pytest.raises(ValueError):
        resolve_codes(select=["DET999"])
    with pytest.raises(ValueError):
        resolve_codes(ignore=["NOPE"])


# -- engine: files, module names, JSON ---------------------------------------

def test_module_name_resolution_walks_packages():
    engine_py = os.path.join(PACKAGE_ROOT, "simnet", "engine.py")
    assert module_name_for(engine_py) == "repro.simnet.engine"
    init_py = os.path.join(PACKAGE_ROOT, "simnet", "__init__.py")
    assert module_name_for(init_py) == "repro.simnet"


def test_lint_paths_reports_over_files(tmp_path):
    bad = tmp_path / "bad_fixture.py"
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 1
    assert [f.code for f in report.findings] == ["DET002"]
    payload = report.to_dict()
    assert payload["version"] == 1
    assert payload["summary"] == {"total": 1, "by_code": {"DET002": 1}}
    finding = payload["findings"][0]
    assert set(finding) == {"path", "line", "col", "code", "message"}
    assert finding["line"] == 5


def test_syntax_errors_are_findings_not_crashes(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    report = lint_paths([str(broken)])
    assert [f.code for f in report.findings] == ["E999"]


# -- the gating self-check ----------------------------------------------------

def test_repro_package_lints_clean():
    """`repro lint src/repro` exits 0: the shipped tree honours its own
    determinism contract."""
    report = lint_paths([PACKAGE_ROOT])
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings)
    assert report.files_checked > 90


def test_cli_exit_codes_and_json(tmp_path):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    clean = subprocess.run(
        [sys.executable, "-m", "repro.lint", PACKAGE_ROOT,
         "--format", "json"],
        capture_output=True, text=True, env=env)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    payload = json.loads(clean.stdout)
    assert payload["findings"] == []

    bad = tmp_path / "bad_fixture.py"
    bad.write_text("registry = {}\n")
    dirty = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(bad)],
        capture_output=True, text=True, env=env)
    assert dirty.returncode == 1
    assert "DET005" in dirty.stdout

    usage = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(bad),
         "--select", "DET999"],
        capture_output=True, text=True, env=env)
    assert usage.returncode == 2

"""Middlebox and policy tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Link, LinkConfig
from repro.simnet.middlebox import (
    CLIENT_TO_SERVER,
    SERVER_TO_CLIENT,
    Middlebox,
    NetemJitterPolicy,
    Policy,
    SpacingPolicy,
    TokenBucketPolicy,
    UniformDelayPolicy,
    WindowedDropPolicy,
)
from repro.simnet.packet import Packet
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.tcp.connection import TcpConfig, TcpStack
from repro.tcp.segment import RecordSlice, TcpSegment
from repro.tls.record import APPLICATION_DATA, TlsRecord


def make_app_packet(payload_len=100, content_type=APPLICATION_DATA):
    record = TlsRecord(content_type=content_type,
                       payload_len=payload_len - 21)
    seg = TcpSegment(src="client", dst="server", src_port=40000, dst_port=443,
                     seq=0, payload_len=record.wire_len,
                     slices=(RecordSlice(record, 0, record.wire_len),))
    return Packet(src="client", dst="server", size=54 + record.wire_len,
                  segment=seg)


def make_ack_packet():
    seg = TcpSegment(src="client", dst="server", src_port=40000, dst_port=443)
    return Packet(src="client", dst="server", size=54, segment=seg)


class MboxRig:
    """Middlebox with both directions wired to capture sinks."""

    def __init__(self, seed=0):
        self.sim = Simulator(seed=seed)
        fast = LinkConfig(bandwidth_bps=1e12, propagation_s=0.0)
        self.mbox = Middlebox(self.sim)
        self.in_c = Link(self.sim, "in_c", fast)
        self.out_s = Link(self.sim, "out_s", fast)
        self.in_s = Link(self.sim, "in_s", fast)
        self.out_c = Link(self.sim, "out_c", fast)
        self.mbox.attach(CLIENT_TO_SERVER, self.in_c, self.out_s)
        self.mbox.attach(SERVER_TO_CLIENT, self.in_s, self.out_c)
        self.server_arrivals = []
        self.client_arrivals = []
        self.out_s.attach(lambda p: self.server_arrivals.append((self.sim.now, p)))
        self.out_c.attach(lambda p: self.client_arrivals.append((self.sim.now, p)))

    def send_c2s(self, pkt, at=None):
        when = at if at is not None else self.sim.now
        self.sim.schedule_at(when, self.in_c.send, pkt)


def test_neutral_forwarding():
    rig = MboxRig()
    rig.send_c2s(make_app_packet())
    rig.sim.run()
    assert len(rig.server_arrivals) == 1


def test_uniform_delay_policy_shifts_everything_equally():
    rig = MboxRig()
    rig.mbox.add_policy(UniformDelayPolicy(0.05, direction=CLIENT_TO_SERVER))
    rig.send_c2s(make_app_packet(), at=0.0)
    rig.send_c2s(make_app_packet(), at=0.001)
    rig.sim.run()
    times = [t for t, _ in rig.server_arrivals]
    assert times[0] == pytest.approx(0.05, abs=1e-6)
    # Inter-arrival gap unchanged: the Section IV-A observation.
    assert times[1] - times[0] == pytest.approx(0.001, abs=1e-6)


def test_spacing_policy_enforces_min_gap():
    rig = MboxRig()
    rig.mbox.add_policy(SpacingPolicy(0.05, CLIENT_TO_SERVER))
    for i in range(4):
        rig.send_c2s(make_app_packet(), at=0.001 * i)
    rig.sim.run()
    times = [t for t, _ in rig.server_arrivals]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g >= 0.05 - 1e-9 for g in gaps)


def test_spacing_policy_ignores_pure_acks():
    rig = MboxRig()
    rig.mbox.add_policy(SpacingPolicy(0.05, CLIENT_TO_SERVER))
    rig.send_c2s(make_app_packet(), at=0.0)
    rig.send_c2s(make_app_packet(), at=0.001)   # held to +0.05
    rig.send_c2s(make_ack_packet(), at=0.002)   # passes unheld
    rig.sim.run()
    ack_times = [t for t, p in rig.server_arrivals
                 if p.segment.payload_len == 0]
    assert ack_times[0] == pytest.approx(0.002, abs=1e-6)


def test_spacing_policy_epoch_resets_after_idle_drain():
    rig = MboxRig()
    policy = SpacingPolicy(0.1, CLIENT_TO_SERVER, reset_idle_s=0.2)
    rig.mbox.add_policy(policy)
    rig.send_c2s(make_app_packet(), at=0.0)
    rig.send_c2s(make_app_packet(), at=0.001)
    # Next burst long after the queue drained: released immediately.
    rig.send_c2s(make_app_packet(), at=1.0)
    rig.sim.run()
    times = [t for t, _ in rig.server_arrivals]
    assert times[2] == pytest.approx(1.0, abs=1e-6)
    assert policy.epochs == 2


def test_spacing_policy_no_epoch_reset_while_queue_full():
    rig = MboxRig()
    policy = SpacingPolicy(0.5, CLIENT_TO_SERVER, reset_idle_s=0.2)
    rig.mbox.add_policy(policy)
    for i in range(4):
        rig.send_c2s(make_app_packet(), at=0.001 * i)
    # Arrives after an idle gap but while holds are still draining.
    rig.send_c2s(make_app_packet(), at=0.9)
    rig.sim.run()
    times = sorted(t for t, _ in rig.server_arrivals)
    # The late packet must queue behind the ramp (release ~2.0), not jump.
    assert times[-1] == pytest.approx(2.0, abs=1e-3)
    assert policy.epochs == 1


def test_spacing_policy_initial_gap():
    rig = MboxRig()
    rig.mbox.add_policy(SpacingPolicy(0.05, CLIENT_TO_SERVER,
                                      initial_gap_s=0.2, initial_count=2))
    for i in range(4):
        rig.send_c2s(make_app_packet(), at=0.001 * i)
    rig.sim.run()
    times = [t for t, _ in rig.server_arrivals]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps[0] == pytest.approx(0.2, abs=1e-3)
    assert gaps[1] == pytest.approx(0.2, abs=1e-3)
    assert gaps[2] == pytest.approx(0.05, abs=1e-3)


def test_netem_jitter_delays_within_band():
    rig = MboxRig()
    rig.mbox.add_policy(NetemJitterPolicy(rig.sim, 0.05, CLIENT_TO_SERVER,
                                          frac=0.5))
    for i in range(30):
        rig.send_c2s(make_app_packet(), at=0.0001 * i)
    rig.sim.run()
    delays = [t - 0.0001 * i for i, (t, _) in
              enumerate(sorted(rig.server_arrivals))]
    assert all(0.02 <= d <= 0.08 for d in delays)


def test_token_bucket_paces_to_rate():
    rig = MboxRig()
    rig.mbox.add_policy(TokenBucketPolicy(rate_bps=8e5))  # 100 kB/s
    for _ in range(10):
        rig.send_c2s(make_app_packet(payload_len=1000))
    rig.sim.run()
    times = [t for t, _ in rig.server_arrivals]
    # 1054-byte packets at 100 kB/s: 10.54 ms apart.
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(0.01054, rel=0.05) for g in gaps)


def test_token_bucket_drops_over_backlog():
    rig = MboxRig()
    policy = TokenBucketPolicy(rate_bps=8e4, max_backlog_s=0.1)
    rig.mbox.add_policy(policy)
    for _ in range(20):
        rig.send_c2s(make_app_packet(payload_len=1000))
    rig.sim.run()
    assert policy.dropped > 0
    assert len(rig.server_arrivals) == 20 - policy.dropped


def test_windowed_drop_only_in_window_and_matched():
    rig = MboxRig()
    policy = WindowedDropPolicy(rig.sim, rate=1.0, direction=CLIENT_TO_SERVER,
                                start_at=0.0, end_at=0.5)
    rig.mbox.add_policy(policy)
    rig.send_c2s(make_app_packet(), at=0.1)      # dropped (in window)
    rig.send_c2s(make_ack_packet(), at=0.1)      # unmatched: passes
    rig.send_c2s(make_app_packet(), at=1.0)      # after window: passes
    rig.sim.run()
    assert len(rig.server_arrivals) == 2
    assert policy.dropped == 1


def test_drop_window_boundaries_exactly_at_release_time():
    """The window is half-open: a packet released exactly at
    ``start_at`` is dropped, one released exactly at ``end_at`` passes."""
    sim = Simulator(seed=0)
    policy = WindowedDropPolicy(sim, rate=1.0, direction=CLIENT_TO_SERVER,
                                start_at=0.5, end_at=1.0)
    view = make_app_packet().wire_view()
    assert not policy.process(view, CLIENT_TO_SERVER, 0.5 - 1e-9).drop
    assert policy.process(view, CLIENT_TO_SERVER, 0.5).drop
    assert policy.process(view, CLIENT_TO_SERVER, 1.0 - 1e-9).drop
    assert not policy.process(view, CLIENT_TO_SERVER, 1.0).drop
    assert policy.dropped == 2


def test_drop_window_applies_to_release_time_not_arrival():
    """An upstream delay shifts packets across the window boundary: the
    window acts on when the packet would hit the wire, not when it
    reached the middlebox."""
    rig = MboxRig()
    rig.mbox.add_policy(UniformDelayPolicy(0.3, direction=CLIENT_TO_SERVER))
    policy = rig.mbox.add_policy(WindowedDropPolicy(
        rig.sim, rate=1.0, direction=CLIENT_TO_SERVER,
        start_at=0.5, end_at=1.0))
    rig.send_c2s(make_app_packet(), at=0.3)   # released 0.6: inside
    rig.send_c2s(make_app_packet(), at=0.8)   # released 1.1: past the end
    rig.sim.run()
    assert policy.dropped == 1
    assert len(rig.server_arrivals) == 1
    assert rig.server_arrivals[0][0] == pytest.approx(1.1, abs=1e-6)


def test_tap_sees_drops():
    rig = MboxRig()
    rig.mbox.add_policy(WindowedDropPolicy(rig.sim, rate=1.0,
                                           direction=CLIENT_TO_SERVER,
                                           start_at=0.0, end_at=1.0))
    seen = []
    rig.mbox.add_tap(lambda now, d, view, dropped: seen.append(dropped))
    rig.send_c2s(make_app_packet())
    rig.sim.run()
    assert seen == [True]


def test_policy_removal_restores_forwarding():
    rig = MboxRig()
    policy = rig.mbox.add_policy(UniformDelayPolicy(10.0))
    rig.mbox.remove_policy(policy)
    rig.send_c2s(make_app_packet())
    rig.sim.run(until=1.0)
    assert len(rig.server_arrivals) == 1


def test_remove_missing_policy_is_noop():
    rig = MboxRig()
    rig.mbox.remove_policy(UniformDelayPolicy(1.0))


def test_clear_policies():
    rig = MboxRig()
    rig.mbox.add_policy(UniformDelayPolicy(1.0))
    rig.mbox.add_policy(UniformDelayPolicy(2.0))
    rig.mbox.clear_policies()
    assert rig.mbox.policies == ()


def test_policies_compose_delays():
    rig = MboxRig()
    rig.mbox.add_policy(UniformDelayPolicy(0.05, direction=CLIENT_TO_SERVER))
    rig.mbox.add_policy(UniformDelayPolicy(0.03, direction=CLIENT_TO_SERVER))
    rig.send_c2s(make_app_packet())
    rig.sim.run()
    assert rig.server_arrivals[0][0] == pytest.approx(0.08, abs=1e-6)


def test_direction_stats():
    rig = MboxRig()
    rig.send_c2s(make_app_packet())
    rig.sim.run()
    assert rig.mbox.stats[CLIENT_TO_SERVER].forwarded == 1
    assert rig.mbox.stats[SERVER_TO_CLIENT].forwarded == 0


def test_failed_middlebox_drops_everything_and_blinds_taps():
    rig = MboxRig()
    tap_times = []
    rig.mbox.add_tap(lambda now, d, view, dropped: tap_times.append(now))
    rig.send_c2s(make_app_packet(), at=0.1)
    rig.sim.schedule_at(0.2, rig.mbox.fail)
    rig.send_c2s(make_app_packet(), at=0.3)   # lost and unobserved
    rig.send_c2s(make_ack_packet(), at=0.35)  # even ACKs: the box IS the path
    rig.sim.schedule_at(0.4, rig.mbox.recover)
    rig.send_c2s(make_app_packet(), at=0.5)
    rig.sim.run()
    assert len(rig.server_arrivals) == 2
    stats = rig.mbox.stats[CLIENT_TO_SERVER]
    assert stats.forwarded == 2
    assert stats.dropped == 2
    assert stats.dropped_failed == 2
    assert tap_times == pytest.approx([0.1, 0.5], abs=1e-6)


def test_fail_and_recover_are_idempotent():
    rig = MboxRig()
    policy = rig.mbox.add_policy(UniformDelayPolicy(0.01))
    rig.mbox.fail()
    rig.mbox.fail()
    assert rig.mbox.crashes == 1
    assert rig.mbox.policies == ()
    rig.mbox.recover()
    rig.mbox.recover()
    assert not rig.mbox.failed
    assert rig.mbox.policies == (policy,)


def test_drop_window_outliving_the_connection_is_bounded():
    """A 100 % drop window that never ends: the sender's capped RTO
    backoff bounds the retransmissions, and aborting the connection
    inside the window cancels the timers so the event queue drains."""
    sim = Simulator(seed=0)
    topo = StandardTopology(sim, TopologyConfig(natural_jitter_mean_s=0.0,
                                                natural_loss_rate=0.0))
    client_tcp = TcpStack(sim, topo.client, TcpConfig())
    server_tcp = TcpStack(sim, topo.server, TcpConfig())
    server_tcp.listen(443, lambda conn: None)
    conn = client_tcp.connect("server", 443, lambda c: None)
    sim.run(until=0.5)
    assert conn.established

    topo.middlebox.add_policy(WindowedDropPolicy(
        sim, rate=1.0, direction=CLIENT_TO_SERVER,
        start_at=0.5, end_at=float("inf")))
    record = TlsRecord(content_type=APPLICATION_DATA, payload_len=979)
    sim.schedule_at(0.6, conn.send_record, record)
    sim.run(until=30.0)

    # Capped exponential backoff: a handful of retransmissions over
    # 30 s -- neither a storm nor silence -- and the RTO stays clamped.
    assert 3 <= conn.stats.retransmits_timeout <= 25
    assert conn.rto.rto <= conn.rto.max_rto

    # Abort with the window still open: the sim must drain instead of
    # retransmitting into the black hole forever.
    conn.abort()
    before = conn.stats.retransmits
    sim.run()
    assert conn.stats.retransmits == before
    assert conn.state == "closed"

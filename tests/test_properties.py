"""Property-based tests (hypothesis) on core data structures."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import SizeEstimator
from repro.core.metrics import degree_of_multiplexing, serve_spans
from repro.core.planner import spacing_schedule
from repro.http2.hpack import HpackDecoder, HpackEncoder
from repro.http2.priority import PriorityTree
from repro.http2.server import TxEntry
from repro.simnet.trace import CompletedRecord
from repro.tcp.buffer import SendBuffer
from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.rto import RtoEstimator
from repro.tls.record import APPLICATION_DATA, TlsRecord


# -- send buffer: slicing is a partition ------------------------------------

@given(st.lists(st.integers(min_value=22, max_value=3000), min_size=1,
                max_size=30),
       st.data())
def test_send_buffer_slices_partition_stream(record_sizes, data):
    buf = SendBuffer()
    for size in record_sizes:
        buf.write(TlsRecord(content_type=APPLICATION_DATA,
                            payload_len=size - 21))
    total = buf.total_written
    start = data.draw(st.integers(min_value=0, max_value=total - 1))
    length = data.draw(st.integers(min_value=1, max_value=total - start))
    slices = buf.slice_stream(start, length)
    assert sum(s.length for s in slices) == length
    # Slices are contiguous and non-overlapping within their records.
    for s in slices:
        assert 0 <= s.offset < s.record.wire_len
        assert 0 < s.length <= s.record.wire_len - s.offset


@given(st.lists(st.integers(min_value=22, max_value=2000), min_size=2,
                max_size=20))
def test_send_buffer_mss_segmentation_covers_everything(record_sizes):
    buf = SendBuffer()
    for size in record_sizes:
        buf.write(TlsRecord(content_type=APPLICATION_DATA,
                            payload_len=size - 21))
    mss = 1400
    covered = 0
    seq = 0
    while seq < buf.total_written:
        length = min(mss, buf.total_written - seq)
        covered += sum(s.length for s in buf.slice_stream(seq, length))
        seq += length
    assert covered == buf.total_written


# -- hpack: decode(encode(x)) == x -------------------------------------------

header_name = st.sampled_from(
    [":path", ":method", "accept", "cookie", "x-a", "x-b", "user-agent"])
header_value = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=0, max_size=24)


@given(st.lists(st.tuples(header_name, header_value), min_size=1,
                max_size=12))
@settings(max_examples=50)
def test_hpack_roundtrip_property(headers):
    encoder = HpackEncoder()
    decoder = HpackDecoder()
    for _ in range(2):  # stateful: same block twice must still round-trip
        size, tokens = encoder.encode(headers)
        assert size >= 1
        assert decoder.decode(tokens) == headers


# -- reno: invariants ----------------------------------------------------------

@given(st.lists(st.sampled_from(["ack", "fast", "dup", "timeout", "exit",
                                 "idle"]),
                max_size=60))
def test_reno_invariants(events):
    control = RenoCongestionControl(mss=1000, init_cwnd_segments=10,
                                    cwnd_cap_bytes=100_000)
    for event in events:
        if event == "ack":
            control.on_ack(1000)
        elif event == "fast":
            control.on_fast_retransmit(flight_size=control.cwnd)
        elif event == "dup":
            control.on_dup_ack_in_recovery()
        elif event == "timeout":
            control.on_timeout(flight_size=control.cwnd)
        elif event == "exit":
            control.on_recovery_exit()
        elif event == "idle":
            control.on_idle_restart()
        assert 1000 <= control.cwnd <= 100_000
        assert control.ssthresh >= 2000


# -- rto: always within clamps ----------------------------------------------------

@given(st.lists(st.one_of(
    st.floats(min_value=0.0, max_value=5.0).map(lambda x: ("sample", x)),
    st.just(("timeout", None)),
    st.just(("ack", None)),
    st.just(("spurious", None)),
), max_size=60))
def test_rto_always_clamped(events):
    est = RtoEstimator(min_rto=0.2, max_rto=10.0)
    for kind, value in events:
        if kind == "sample":
            est.on_rtt_sample(value)
        elif kind == "timeout":
            est.on_timeout()
        elif kind == "ack":
            est.on_new_ack()
        else:
            est.on_spurious_timeout()
        assert 0.2 <= est.rto <= 10.0


# -- spacing schedule: achieves the target gaps ------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=0.2), min_size=1,
                max_size=20),
       st.floats(min_value=0.001, max_value=0.2))
def test_spacing_schedule_achieves_target(gaps, target):
    holds = spacing_schedule(gaps, target)
    assert len(holds) == len(gaps) + 1
    assert all(h >= 0 for h in holds)
    # Release times (issue time + hold) are spaced at least `target`
    # apart whenever a hold was applied.
    elapsed = 0.0
    releases = [holds[0]]
    for gap, hold in zip(gaps, holds[1:]):
        elapsed += gap
        releases.append(elapsed + hold)
    for earlier, later in zip(releases, releases[1:]):
        assert later - earlier >= -1e-9
        assert later >= earlier  # monotone forwarding order


# -- priority tree: ready-share normalization ------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=1, max_value=50),
                          st.integers(min_value=1, max_value=256)),
                min_size=1, max_size=15, unique_by=lambda t: t[0]))
def test_priority_shares_normalize(streams):
    tree = PriorityTree()
    for stream_id, weight in streams:
        tree.add_stream(stream_id * 2 + 1, weight=weight)
    ready = [stream_id * 2 + 1 for stream_id, _ in streams]
    weights = tree.scheduling_weights(ready)
    assert math.isclose(sum(weights.values()), 1.0, rel_tol=1e-9)
    assert all(w > 0 for w in weights.values())


# -- estimator: conservation over serialized records ------------------------------------

@given(st.lists(st.integers(min_value=200, max_value=50_000), min_size=1,
                max_size=10))
@settings(max_examples=40)
def test_estimator_recovers_serialized_sizes_exactly(sizes):
    """Objects transmitted back-to-back with time gaps are recovered
    exactly -- the Fig. 1 serialized case as a property.

    Sizes whose final DATA record is tiny (<= ~90 payload bytes) are
    excluded: such tails are indistinguishable from control records on
    the wire, a real limitation of the size side-channel documented in
    ``test_estimator_tiny_tail_record_lost``.
    """
    from hypothesis import assume
    assume(all(s % 1370 == 0 or s % 1370 > 90 for s in sizes))
    estimator = SizeEstimator()
    records = []
    rid = 0
    clock = 0.0
    for obj_size in sizes:
        remaining = obj_size
        while remaining > 0:
            chunk = min(1370, remaining)
            remaining -= chunk
            rid += 1
            records.append(CompletedRecord(
                record_id=rid, content_type=23, wire_len=chunk + 30,
                start_time=clock, end_time=clock, direction="s2c",
                final_packet_size=chunk + 84))
            clock += 0.0001
        clock += 0.5  # inter-object quiet gap
    estimates = estimator.estimate_from_records(records)
    assert [e.size for e in estimates] == sizes


# -- degree metric: bounds and identity ---------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["/a", "/b", "/c"]),
                          st.integers(min_value=1, max_value=1400)),
                min_size=1, max_size=40))
def test_degree_bounds_property(pieces):
    offset = 0
    log = []
    serve_ids = {"/a": 1, "/b": 2, "/c": 3}
    for path, length in pieces:
        log.append(TxEntry(time=offset * 1e-6, stream_id=serve_ids[path],
                           object_path=path, serve_id=serve_ids[path],
                           tcp_offset=offset, length=length, is_data=True,
                           end_stream=False, duplicate=False))
        offset += length
    for path in {p for p, _ in pieces}:
        degree = degree_of_multiplexing(log, path)
        assert 0.0 <= degree < 1.0


@given(st.lists(st.integers(min_value=1, max_value=1400), min_size=1,
                max_size=20))
def test_degree_zero_for_lone_object(lengths):
    offset = 0
    log = []
    for length in lengths:
        log.append(TxEntry(time=0.0, stream_id=1, object_path="/only",
                           serve_id=1, tcp_offset=offset, length=length,
                           is_data=True, end_stream=False, duplicate=False))
        offset += length
    assert degree_of_multiplexing(log, "/only") == 0.0

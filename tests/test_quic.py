"""QUIC-lite substrate and HTTP/3 transfer tests."""

import pytest

from repro.experiments.quic_transfer import (
    QuicPacketEstimator,
    quic_request_matcher,
    run_quic_transfer,
)
from repro.quic.connection import QuicConfig, QuicConnection, QuicEndpoint
from repro.quic.frames import AckFrame, QuicPacket, StreamFrame
from repro.quic.h3 import H3Client, H3Server
from repro.simnet.engine import Simulator
from repro.simnet.link import LinkConfig
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.website.objects import WebObject
from repro.website.sitemap import Site


class QuicRig:
    def __init__(self, seed=0, loss=0.0):
        self.sim = Simulator(seed=seed)
        self.topo = StandardTopology(self.sim, TopologyConfig(
            natural_loss_rate=loss))
        self.site = Site("q", "q.example")
        for path, size in {"/a": 40_000, "/b": 25_000, "/c": 900}.items():
            self.site.add(WebObject(path=path, size=size, cacheable=False))
        self.server = H3Server(self.sim, self.topo.server, self.site)
        self.client = H3Client(self.sim, self.topo.client, "server")
        self.ready = False
        self.client.connect(lambda: setattr(self, "ready", True))

    def run(self, duration=1.0):
        self.sim.run(until=self.sim.now + duration)


def test_quic_packet_fully_encrypted_wire_view():
    packet = QuicPacket(frames=(StreamFrame(stream_id=0, offset=0,
                                            length=100),))
    tcp_view, records, retx = packet.wire_view()
    assert tcp_view is None
    assert records == ()
    assert retx is False


def test_handshake_establishes():
    rig = QuicRig()
    rig.run(1.0)
    assert rig.ready


def test_h3_get_roundtrip():
    rig = QuicRig()
    rig.run(1.0)
    done = []
    state = rig.client.request("/a", on_complete=done.append)
    rig.run(3.0)
    assert done and state["complete"]
    assert state["bytes"] == 40_000


def test_h3_404_completes_with_zero_bytes():
    rig = QuicRig()
    rig.run(1.0)
    state = rig.client.request("/missing")
    rig.run(2.0)
    assert state["complete"] and state["bytes"] == 0


def test_concurrent_streams_interleave():
    rig = QuicRig()
    rig.run(1.0)
    rig.client.request("/a")
    rig.client.request("/b")
    rig.run(3.0)
    data = [e.object_path for e in rig.server.tx_log if e.is_data]
    first_b = data.index("/b")
    last_a = len(data) - 1 - data[::-1].index("/a")
    assert first_b < last_a  # round-robin interleaving


def test_transfer_survives_loss():
    rig = QuicRig(seed=3, loss=0.05)
    rig.run(3.0)
    done = []
    rig.client.request("/a", on_complete=done.append)
    rig.run(20.0)
    assert done and done[0]["bytes"] == 40_000
    conn = rig.server.connections[0]
    assert conn.stats_retransmissions > 0


def test_no_cross_stream_blocking():
    """A lost packet of one stream must not delay another stream's
    delivery -- QUIC's core difference from TCP."""
    rig = QuicRig(seed=5, loss=0.08)
    rig.run(3.0)
    completions = []
    rig.client.request("/a", on_complete=lambda s: completions.append((
        s["path"], rig.sim.now)))
    rig.client.request("/c", on_complete=lambda s: completions.append((
        s["path"], rig.sim.now)))
    rig.run(20.0)
    assert {path for path, _ in completions} == {"/a", "/c"}
    by_path = dict(completions)
    # The tiny object is never stuck behind the big one's losses.
    assert by_path["/c"] <= by_path["/a"]


def test_reset_stream_stops_service():
    rig = QuicRig()
    rig.run(1.0)
    state = rig.client.request("/a")
    rig.run(0.04)
    rig.client.reset_stream(state)
    rig.run(3.0)
    assert not state["complete"]
    assert state["bytes"] < 40_000


def test_request_matcher_bands():
    class FakeView:
        def __init__(self, size):
            self.size = size

    assert quic_request_matcher(FakeView(170))      # a GET datagram
    assert not quic_request_matcher(FakeView(94))   # a pure ACK
    assert not quic_request_matcher(FakeView(1254))  # padded Initial / DATA


def test_packet_estimator_recovers_serialized_sizes():
    rig = QuicRig()
    rig.run(1.0)
    done = []
    rig.client.request("/a", on_complete=lambda s: done.append(1))
    rig.run(3.0)
    rig.client.request("/b", on_complete=lambda s: done.append(1))
    rig.run(3.0)
    estimates = QuicPacketEstimator().estimate(rig.topo.trace)
    sizes = [e.size for e in estimates if e.size > 5_000]
    assert any(abs(s - 40_000) < 600 for s in sizes)
    assert any(abs(s - 25_000) < 600 for s in sizes)


def test_quic_transfer_experiment_shape():
    result = run_quic_transfer(n_sessions=2)
    by_name = {p.condition.split(" (")[0]: p for p in result.points}
    assert by_name["spacing attack"].sequence_accuracy_pct \
        > by_name["passive"].sequence_accuracy_pct + 30
    assert by_name["spacing attack"].images_serialized_pct > 80.0

"""QUIC connection internals and adversary reset-detector units."""

import pytest

from repro.quic.connection import QuicConfig, QuicConnection, QuicEndpoint
from repro.quic.frames import AckFrame, QuicPacket, StreamFrame
from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.link import Link, LinkConfig


class PairRig:
    """Two QUIC endpoints over a clean direct link."""

    def __init__(self, seed=0):
        self.sim = Simulator(seed=seed)
        self.a = Host(self.sim, "a")
        self.b = Host(self.sim, "b")
        cfg = LinkConfig(propagation_s=0.01)
        ab = Link(self.sim, "ab", cfg)
        ba = Link(self.sim, "ba", cfg)
        self.a.attach_links(ab, ba)
        self.b.attach_links(ba, ab)
        self.ea = QuicEndpoint(self.sim, self.a)
        self.eb = QuicEndpoint(self.sim, self.b)
        self.server_conn = None
        self.eb.listen(lambda c: setattr(self, "server_conn", c))
        self.client_conn = self.ea.connect("b", lambda c: None)

    def run(self, duration=1.0):
        self.sim.run(until=self.sim.now + duration)


def test_handshake_one_rtt_ish():
    rig = PairRig()
    rig.run(0.5)
    assert rig.client_conn.established
    assert rig.server_conn is not None and rig.server_conn.established


def test_stream_bytes_delivered_in_order():
    rig = PairRig()
    rig.run(0.5)
    received = []
    rig.server_conn.on_stream_frame = lambda f: received.append(
        (f.stream_id, f.offset, f.length))
    for length in (500, 700, 300):
        rig.client_conn.send_stream_frame(0, length, False, None)
    rig.run(0.5)
    assert received == [(0, 0, 500), (0, 500, 700), (0, 1200, 300)]


def test_streams_do_not_block_each_other():
    rig = PairRig()
    rig.run(0.5)
    received = []
    rig.server_conn.on_stream_frame = lambda f: received.append(f.stream_id)
    rig.client_conn.send_stream_frame(0, 400, False, None)
    rig.client_conn.send_stream_frame(4, 400, False, None)
    rig.run(0.5)
    assert set(received) == {0, 4}


def test_rtt_estimated_from_acks():
    rig = PairRig()
    rig.run(0.5)
    rig.client_conn.send_stream_frame(0, 1000, False, None)
    rig.run(0.5)
    assert rig.client_conn.rtt.srtt == pytest.approx(0.02, abs=0.01)


def test_cwnd_limits_flight():
    rig = PairRig()
    rig.run(0.5)
    for _ in range(200):
        rig.client_conn.send_stream_frame(0, 1100, False, None)
    conn = rig.client_conn
    assert conn._bytes_in_flight <= conn.cc.cwnd + 2 * conn.config.max_payload
    rig.run(5.0)
    assert conn.queued_bytes == 0


def test_packet_threshold_loss_detection():
    rig = PairRig()
    rig.run(0.5)
    conn = rig.client_conn
    conn.send_stream_frame(0, 1000, False, None)
    # Fabricate: the packet we just sent is skipped while 4 later packet
    # numbers are acked -> declared lost and retransmitted.
    lost_number = max(conn._unacked)
    for _ in range(4):
        conn.send_stream_frame(0, 600, False, None)
    later = [n for n in conn._unacked if n != lost_number]
    conn._on_ack(AckFrame(largest_acked=max(later), acked=tuple(later)))
    assert conn.stats_retransmissions >= 1


def test_pto_fires_without_acks():
    rig = PairRig()
    rig.run(0.5)
    conn = rig.client_conn

    # Sever the return path: drop the peer's ACKs by breaking delivery.
    rig.eb.handle_packet = lambda packet: None
    conn.send_stream_frame(0, 900, False, None)
    rig.run(2.0)
    assert conn.stats_retransmissions >= 1


def test_reset_stream_purges_queue():
    rig = PairRig()
    rig.run(0.5)
    conn = rig.client_conn
    resets = []
    rig.server_conn.on_reset_stream = resets.append
    # Fill beyond cwnd so frames sit queued, then reset the stream.
    for _ in range(300):
        conn.send_stream_frame(0, 1100, False, None)
    conn.reset_stream(0)
    assert all(not (isinstance(f, StreamFrame) and f.stream_id == 0)
               for f in conn._frame_queue)
    rig.run(3.0)
    assert resets == [0]


def test_reset_detector_requires_burst():
    """The adversary's RST_STREAM detector wants >=3 control records
    within half a second during the disrupt phase."""
    from repro.core.adversary import Http2SerializationAttack
    from repro.core.phases import AttackConfig, AttackPhase
    from repro.simnet.topology import StandardTopology

    sim = Simulator()
    topo = StandardTopology(sim)
    attack = Http2SerializationAttack(sim, topo.middlebox, topo.trace,
                                      AttackConfig())
    attack.attach()
    attack._enter_phase(AttackPhase.DISRUPT)
    attack._disrupt_started = 0.0
    sim.run(until=2.0)
    # Two lone control sightings: no trigger.
    attack._maybe_detect_reset(2.0)
    attack.monitor.control_times.append(2.0)
    attack._maybe_detect_reset(2.1)
    attack.monitor.control_times.append(2.1)
    assert attack.phase == AttackPhase.DISRUPT
    # Third within the window: serialize begins.
    attack.monitor.control_times.append(2.2)
    attack._maybe_detect_reset(2.2)
    assert attack.phase == AttackPhase.SERIALIZE

"""RTO estimator tests."""

import pytest

from repro.tcp.rto import RtoEstimator


def test_initial_rto_before_samples():
    est = RtoEstimator(initial_rto=1.0)
    assert est.rto == 1.0


def test_first_sample_initialises_srtt():
    est = RtoEstimator(min_rto=0.0)
    est.on_rtt_sample(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)
    assert est.rto == pytest.approx(0.1 + 4 * 0.05)


def test_smoothing_converges_to_constant_rtt():
    est = RtoEstimator(min_rto=0.0)
    for _ in range(200):
        est.on_rtt_sample(0.05)
    assert est.srtt == pytest.approx(0.05, rel=0.01)
    assert est.rttvar < 0.005


def test_min_rto_floor():
    est = RtoEstimator(min_rto=0.2)
    for _ in range(50):
        est.on_rtt_sample(0.01)
    assert est.rto == 0.2


def test_backoff_doubles_and_caps():
    est = RtoEstimator(min_rto=0.2, backoff_cap=4)
    base = est.rto
    est.on_timeout()
    assert est.rto == pytest.approx(base * 2)
    est.on_timeout()
    assert est.rto == pytest.approx(base * 4)
    est.on_timeout()
    assert est.rto == pytest.approx(base * 4)  # capped


def test_backoff_multiplies_the_sampled_base():
    est = RtoEstimator(min_rto=0.0)
    est.on_rtt_sample(0.1)
    base = est.rto
    est.on_timeout()
    est.on_timeout()
    assert est.rto == pytest.approx(base * 4)


def test_repeated_timeouts_at_cap_hold_steady():
    est = RtoEstimator(backoff_cap=4)
    for _ in range(3):
        est.on_timeout()
    at_cap = est.rto
    for _ in range(20):
        est.on_timeout()
    assert est.rto == at_cap == pytest.approx(4.0)


def test_max_rto_clamps_before_the_backoff_cap():
    # initial_rto 1.0 with cap 16 would reach 16 s; max_rto wins first.
    est = RtoEstimator(min_rto=0.2, max_rto=2.0, backoff_cap=16)
    est.on_timeout()
    assert est.rto == 2.0
    est.on_timeout()
    assert est.rto == 2.0


def test_min_rto_floor_applies_under_backoff():
    # A tiny sampled base is floored first; backoff multiplies the
    # floored value, not the raw estimate.
    est = RtoEstimator(min_rto=0.2)
    est.on_rtt_sample(0.001)
    assert est.rto == 0.2
    est.on_timeout()
    assert est.rto == pytest.approx(0.4)


def test_new_ack_resets_backoff():
    est = RtoEstimator(min_rto=0.2)
    base = est.rto
    est.on_timeout()
    est.on_new_ack()
    assert est.rto == pytest.approx(base)


def test_max_rto_clamp():
    est = RtoEstimator(min_rto=0.2, max_rto=1.0, backoff_cap=64)
    for _ in range(10):
        est.on_timeout()
    assert est.rto == 1.0


def test_new_ack_after_deep_backoff_restores_sampled_base():
    est = RtoEstimator(min_rto=0.0)
    est.on_rtt_sample(0.1)
    base = est.rto
    for _ in range(6):
        est.on_timeout()
    assert est.rto > base
    est.on_new_ack()
    assert est.rto == pytest.approx(base)


def test_spurious_timeout_doubles_base():
    est = RtoEstimator(min_rto=0.0)
    est.on_rtt_sample(0.1)
    before = est.rto
    est.on_spurious_timeout()
    assert est.rto == pytest.approx(before * 2)


def test_spurious_timeout_respects_max_rto():
    est = RtoEstimator(min_rto=0.2, max_rto=1.5)
    est.on_spurious_timeout()   # base 1.0 doubles, clamps at 1.5
    assert est.rto == 1.5
    est.on_spurious_timeout()
    assert est.rto == 1.5


def test_negative_sample_rejected():
    est = RtoEstimator()
    with pytest.raises(ValueError):
        est.on_rtt_sample(-0.1)


def test_variance_grows_with_jittery_samples():
    est = RtoEstimator(min_rto=0.0)
    est.on_rtt_sample(0.05)
    smooth_var = est.rttvar
    for rtt in (0.01, 0.2, 0.02, 0.3):
        est.on_rtt_sample(rtt)
    assert est.rttvar > smooth_var

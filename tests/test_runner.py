"""Parallel grid runner: fan-out determinism, caching, invalidation."""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    code_version,
    grid,
    resolve_cell,
    run_grid,
)

#: Dotted paths workers resolve (this module is importable as a package
#: module because ``tests`` is a package and pytest runs from the repo
#: root).
TOY = "tests.test_runner:toy_cell"
TRACKED = "tests.test_runner:tracked_cell"
SESSION_CELL = "repro.experiments.table1:run_cell"


def toy_cell(seed: int, scale: float = 1.0, label: str = "x") -> dict:
    """Pure function of its spec -- stands in for a simulated run."""
    return {"value": seed * scale, "label": label,
            "sim_time_s": 0.001 * seed, "processed_events": seed + 1}


def tracked_cell(seed: int, marker_dir: str) -> dict:
    """Like toy_cell, but leaves a marker file proving it executed."""
    Path(marker_dir, f"{seed}.ran").touch()
    return {"value": seed}


@pytest.fixture
def cache(tmp_path):
    return RunCache(root=tmp_path / "cache")


def test_spec_params_must_be_jsonable():
    with pytest.raises(TypeError):
        RunSpec.make(TOY, 0, bad=object())


def test_spec_key_is_stable_and_order_insensitive():
    a = RunSpec.make(TOY, 3, scale=2.0, label="y")
    b = RunSpec.make(TOY, 3, label="y", scale=2.0)
    assert a == b
    assert a.key("v1") == b.key("v1")
    assert a.key("v1") != a.key("v2")
    assert a.key("v1") != RunSpec.make(TOY, 4, scale=2.0, label="y").key("v1")


def test_resolve_cell_roundtrip():
    assert resolve_cell(TOY) is toy_cell
    with pytest.raises(ValueError):
        resolve_cell("no.colon.in.path")


def test_grid_helper_sweeps_product_of_params():
    specs = grid(TOY, seeds=range(2), scale=[1.0, 2.0], label="fixed")
    assert len(specs) == 4
    assert all(s.kwargs()["label"] == "fixed" for s in specs)
    assert {(s.seed, s.kwargs()["scale"]) for s in specs} == \
           {(0, 1.0), (1, 1.0), (0, 2.0), (1, 2.0)}


def test_jobs_1_and_jobs_4_byte_identical(cache, tmp_path):
    specs = [RunSpec.make(TOY, seed, scale=0.5) for seed in range(8)]
    serial = run_grid(specs, jobs=1, cache=RunCache(root=tmp_path / "a"))
    fanned = run_grid(specs, jobs=4, cache=RunCache(root=tmp_path / "b"))
    assert serial.executed == fanned.executed == 8
    assert json.dumps(serial.metrics()) == json.dumps(fanned.metrics())


def test_session_cell_survives_fanout_and_cache_roundtrip(tmp_path):
    """Real simulator cells: fan-out and cache recall agree byte-for-byte."""
    specs = [RunSpec.make(SESSION_CELL, seed, jitter_s=0.0, style="spacing")
             for seed in range(2)]
    serial = run_grid(specs, jobs=1, cache=RunCache(root=tmp_path / "a"))
    fanned = run_grid(specs, jobs=2, cache=RunCache(root=tmp_path / "b"))
    assert json.dumps(serial.metrics()) == json.dumps(fanned.metrics())
    # Second pass against the warm cache executes nothing and returns
    # identical metrics (the JSON round-trip loses nothing).
    warm = run_grid(specs, jobs=1, cache=RunCache(root=tmp_path / "a"))
    assert warm.executed == 0
    assert warm.cache_hits == 2
    assert json.dumps(warm.metrics()) == json.dumps(serial.metrics())


def test_cache_hit_skips_execution(cache, tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    specs = [RunSpec.make(TRACKED, seed, marker_dir=str(markers))
             for seed in range(3)]

    first = run_grid(specs, jobs=1, cache=cache)
    assert first.executed == 3
    assert len(list(markers.glob("*.ran"))) == 3

    for marker in markers.glob("*.ran"):
        marker.unlink()
    second = run_grid(specs, jobs=1, cache=cache)
    assert second.executed == 0
    assert second.cache_hits == 3
    assert list(markers.glob("*.ran")) == []
    assert second.metrics() == first.metrics()


def test_cache_invalidates_when_spec_changes(cache):
    before = run_grid([RunSpec.make(TOY, 1, scale=1.0)], cache=cache)
    changed = run_grid([RunSpec.make(TOY, 1, scale=2.0)], cache=cache)
    assert before.executed == 1
    assert changed.executed == 1  # different spec -> different key
    again = run_grid([RunSpec.make(TOY, 1, scale=1.0)], cache=cache)
    assert again.executed == 0


def test_disabled_cache_always_executes(tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    specs = [RunSpec.make(TRACKED, 7, marker_dir=str(markers))]
    no_cache = RunCache.disabled()
    run_grid(specs, cache=no_cache)
    (markers / "7.ran").unlink()
    result = run_grid(specs, cache=no_cache)
    assert result.executed == 1
    assert (markers / "7.ran").exists()


def test_unwritable_cache_degrades_instead_of_crashing(tmp_path, capsys):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file where the cache root should be")
    broken = RunCache(root=blocker)
    result = run_grid([RunSpec.make(TOY, seed) for seed in range(2)],
                      cache=broken)
    assert result.executed == 2
    assert broken.enabled is False
    assert "run cache disabled" in capsys.readouterr().err


def test_corrupt_cache_record_reexecutes(cache):
    spec = RunSpec.make(TOY, 5)
    run_grid([spec], cache=cache)
    path = cache._path(spec.key(code_version()))
    path.write_text("{not json")
    result = run_grid([spec], cache=cache)
    assert result.executed == 1
    assert result.metrics()[0]["value"] == 5.0


def test_results_keep_spec_order_and_telemetry(cache):
    specs = [RunSpec.make(TOY, seed) for seed in (5, 1, 3)]
    result = run_grid(specs, jobs=4, cache=cache)
    assert [r.spec.seed for r in result] == [5, 1, 3]
    telemetry = GridTelemetry().add(result)
    assert telemetry.cells == 3
    assert telemetry.executed == 3
    assert telemetry.processed_events == sum(s + 1 for s in (5, 1, 3))
    assert "3 cells" in telemetry.line()

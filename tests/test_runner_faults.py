"""Crash-tolerant runner: worker crashes, hangs, retries, resumption.

Cells here are deliberately hostile -- they kill their process, sleep
past their deadline, or raise -- to prove the grid isolates the damage
to the offending cell, reports a reason, and leaves the cache in a
state from which a rerun executes exactly the missing cells.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.runner import (
    GridError,
    GridTelemetry,
    RunCache,
    RunSpec,
    code_version,
    run_grid,
)

GOOD = "tests.test_runner_faults:good_cell"
CRASH = "tests.test_runner_faults:crash_cell"
HANG = "tests.test_runner_faults:hang_cell"
FLAKY = "tests.test_runner_faults:flaky_cell"
CRASH_ONCE = "tests.test_runner_faults:crash_once_cell"


def good_cell(seed: int, scale: float = 1.0) -> dict:
    return {"value": seed * scale, "sim_time_s": 0.001 * seed,
            "processed_events": seed + 1}


def crash_cell(seed: int) -> dict:
    """Dies without a Python exception -- like a segfault or OOM kill."""
    os._exit(23)


def hang_cell(seed: int) -> dict:
    """Never finishes on its own; only the deadline stops it."""
    time.sleep(300)
    return {}


def flaky_cell(seed: int, marker_dir: str = "") -> dict:
    """Raises on its first attempt, succeeds on the second."""
    marker = Path(marker_dir, f"flaky-{seed}")
    if not marker.exists():
        marker.touch()
        raise RuntimeError("transient failure")
    return {"value": seed}


def crash_once_cell(seed: int, marker_dir: str = "") -> dict:
    """Hard-crashes the worker on its first attempt only."""
    marker = Path(marker_dir, f"crash-{seed}")
    if not marker.exists():
        marker.touch()
        os._exit(23)
    return {"value": seed}


@pytest.fixture
def cache(tmp_path):
    return RunCache(root=tmp_path / "cache")


def test_worker_crash_is_isolated_to_its_cell(cache):
    specs = [RunSpec.make(GOOD, s) for s in range(3)]
    specs.insert(1, RunSpec.make(CRASH, 0))
    grid = run_grid(specs, jobs=2, cache=cache, strict=False)
    assert len(grid.ok) == 3
    assert len(grid.failures) == 1
    assert "exit code 23" in grid.failures[0].error
    # Results stay in spec order, failure in place.
    assert [r.failed for r in grid] == [False, True, False, False]


def test_hung_cell_hits_its_deadline(cache):
    start = time.monotonic()
    grid = run_grid([RunSpec.make(HANG, 0), RunSpec.make(GOOD, 1)],
                    jobs=2, cache=cache, timeout_s=1.0, strict=False)
    assert time.monotonic() - start < 30
    assert len(grid.failures) == 1
    assert "timed out after 1" in grid.failures[0].error
    assert grid.ok[0].metrics["value"] == 1.0


def test_timeout_forces_isolation_even_serial(cache):
    """--jobs 1 with a deadline still cannot be wedged by a hung cell."""
    grid = run_grid([RunSpec.make(HANG, 0)], jobs=1, cache=cache,
                    timeout_s=1.0, strict=False)
    assert grid.failures[0].error.startswith("timed out")


def test_strict_raises_grid_error_after_caching_successes(cache):
    specs = [RunSpec.make(GOOD, s) for s in range(3)]
    specs.append(RunSpec.make(CRASH, 0))
    with pytest.raises(GridError) as excinfo:
        run_grid(specs, jobs=2, cache=cache)
    assert "exit code 23" in str(excinfo.value)
    assert len(excinfo.value.failures) == 1
    # The successes were cached before the raise: a rerun of just the
    # good cells executes nothing.
    warm = run_grid(specs[:3], jobs=1, cache=cache)
    assert warm.executed == 0
    assert warm.cache_hits == 3


def test_resumed_sweep_executes_only_missing_cells(cache, tmp_path):
    """The acceptance scenario: crash + hang + good cells in one sweep;
    the rerun executes exactly the cells the first pass lost."""
    markers = tmp_path / "markers"
    markers.mkdir()
    specs = [RunSpec.make(GOOD, s) for s in range(3)]
    specs.append(RunSpec.make(CRASH_ONCE, 9, marker_dir=str(markers)))
    specs.append(RunSpec.make(HANG, 0))

    first = run_grid(specs, jobs=3, cache=cache, timeout_s=2.0,
                     strict=False)
    assert len(first.failures) == 2
    reasons = sorted(r.error.split(" (")[0] for r in first.failures)
    assert reasons[0].startswith("timed out")
    assert reasons[1].startswith("worker crashed")

    # Rerun everything except the hopeless hang: the three good cells
    # come from the cache, only the (now recovering) crasher executes.
    second = run_grid(specs[:4], jobs=3, cache=cache, timeout_s=2.0)
    assert second.cache_hits == 3
    assert second.executed == 1
    assert second.results[3].metrics["value"] == 9


def test_partial_sweep_matches_clean_serial_run(cache, tmp_path):
    """Surviving cells of a faulty parallel sweep are byte-identical to
    a clean serial run of the same specs."""
    good = [RunSpec.make(GOOD, s, scale=0.5) for s in range(4)]
    mixed = list(good)
    mixed.insert(2, RunSpec.make(CRASH, 0))
    faulty = run_grid(mixed, jobs=3, cache=cache, strict=False)
    clean = run_grid(good, jobs=1, cache=RunCache(root=tmp_path / "b"))
    assert json.dumps(faulty.metrics()) == json.dumps(clean.metrics())


def test_raising_cell_retries_with_backoff_pool(tmp_path):
    markers = tmp_path / "m1"
    markers.mkdir()
    spec = RunSpec.make(FLAKY, 4, marker_dir=str(markers))
    grid = run_grid([spec], jobs=2, cache=RunCache.disabled(),
                    timeout_s=10.0, retries=2, retry_backoff_s=0.01)
    assert grid.results[0].attempts == 2
    assert grid.results[0].metrics["value"] == 4


def test_raising_cell_retries_serial_path(tmp_path):
    markers = tmp_path / "m2"
    markers.mkdir()
    spec = RunSpec.make(FLAKY, 6, marker_dir=str(markers))
    grid = run_grid([spec], jobs=1, cache=RunCache.disabled(),
                    retries=1, retry_backoff_s=0.01)
    assert grid.results[0].attempts == 2


def test_exhausted_retries_report_the_last_reason(cache):
    grid = run_grid([RunSpec.make(CRASH, 0)], jobs=1, cache=cache,
                    timeout_s=5.0, retries=1, retry_backoff_s=0.01,
                    strict=False)
    failure = grid.failures[0]
    assert failure.attempts == 2
    assert "exit code 23" in failure.error


def test_failed_cells_are_never_cached(cache):
    run_grid([RunSpec.make(CRASH, 0)], jobs=1, cache=cache,
             timeout_s=5.0, strict=False)
    key = RunSpec.make(CRASH, 0).key(code_version())
    assert not cache._path(key).exists()


def test_corrupt_cache_entry_is_evicted_and_reexecuted(cache):
    spec = RunSpec.make(GOOD, 5)
    run_grid([spec], cache=cache)
    path = cache._path(spec.key(code_version()))
    path.write_text('{"metrics": {"value": 5.0, "trunc')
    assert cache.get(spec.key(code_version())) is None
    assert not path.exists()  # the corrupt record is gone, not shadowing
    again = run_grid([spec], cache=cache)
    assert again.executed == 1
    assert path.exists()


def test_misshapen_cache_record_counts_as_miss(cache):
    spec = RunSpec.make(GOOD, 8)
    run_grid([spec], cache=cache)
    path = cache._path(spec.key(code_version()))
    path.write_text(json.dumps({"metrics": "not-a-dict"}))
    again = run_grid([spec], cache=cache)
    assert again.executed == 1
    assert again.metrics()[0]["value"] == 8.0


def test_telemetry_reports_failures(cache):
    grid = run_grid([RunSpec.make(GOOD, 1), RunSpec.make(CRASH, 0)],
                    jobs=2, cache=cache, strict=False)
    telemetry = GridTelemetry().add(grid)
    assert telemetry.failed == 1
    assert "1 failed" in telemetry.line()

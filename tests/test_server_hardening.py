"""The server's resource-robustness layer (docs/DOS.md).

Contract under test: every hardening knob defaults to *off* (no
per-connection hardening state, no deadline events, byte-identical
runs), construction-time validation rejects nonsense values, and each
knob defeats the attack kind it was built for while naming its action
in per-connection telemetry (``shed_reason``, counters).
"""

import pytest

from repro.attacks import AttackSpec, make_agent
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.tcp.connection import TcpStack
from repro.website.isidewith import build_isidewith_site


def _session(spec, config, *, seed: int = 5, until: float = 8.0):
    sim = Simulator(seed=seed)
    topo = StandardTopology(sim, TopologyConfig())
    server = Http2Server(sim, topo.server, build_isidewith_site(), config)
    stack = TcpStack(sim, topo.client)
    agent = make_agent(sim, stack, spec)
    agent.start()
    sim.run(until=until)
    return sim, server, stack


# -- construction-time validation ---------------------------------------------

class TestConfigValidation:
    @pytest.mark.parametrize("knob", [
        "handshake_timeout_s", "preamble_timeout_s", "header_timeout_s",
        "body_progress_timeout_s", "max_pings_per_s", "max_settings_per_s",
        "max_resets_per_s",
    ])
    def test_timeout_and_rate_knobs_reject_nonpositive(self, knob):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match=knob):
                Http2ServerConfig(**{knob: bad})

    @pytest.mark.parametrize("knob", ["max_open_streams",
                                      "max_queued_frames"])
    def test_cap_knobs_reject_nonpositive(self, knob):
        for bad in (0, -4):
            with pytest.raises(ValueError, match=knob):
                Http2ServerConfig(**{knob: bad})

    def test_base_fields_still_validated(self):
        with pytest.raises(ValueError, match="max_connections"):
            Http2ServerConfig(max_connections=0)

    def test_none_knobs_are_legal_and_inactive(self):
        config = Http2ServerConfig()
        assert not config.hardening_active()
        # The reap flag alone arms no per-connection machinery.
        assert not Http2ServerConfig(
            reap_slowest_at_capacity=True).hardening_active()
        assert Http2ServerConfig(header_timeout_s=3.0).hardening_active()


# -- off-by-default: no hardening state, no deadline events -------------------

def test_default_config_creates_no_hardening_state():
    spec = AttackSpec("ping_flood", duration_s=2.0, rate_per_s=20.0)
    _sim, server, _stack = _session(spec, Http2ServerConfig())
    assert server.connections
    assert all(c._hardening is None for c in server.connections)
    assert server.shed_connections == 0
    assert server.timed_out_connections == 0


def test_idle_hardened_server_schedules_no_events():
    # Hardening armed but no traffic: the wheel stays empty, so the
    # run processes zero events (the lint/DET byte-identity contract).
    sim = Simulator(seed=1)
    topo = StandardTopology(sim, TopologyConfig())
    Http2Server(sim, topo.server, build_isidewith_site(),
                Http2ServerConfig(handshake_timeout_s=1.0))
    sim.run(until=30.0)
    assert sim.processed_events == 0


# -- deadline knobs vs their attack kinds -------------------------------------

def test_handshake_deadline_kills_silent_dialers():
    spec = AttackSpec("slow_preamble", duration_s=3.0, connections=3,
                      pace_s=10.0)  # no re-dial sweep within the run
    _sim, server, _stack = _session(
        spec, Http2ServerConfig(handshake_timeout_s=1.5), until=6.0)
    assert server.timed_out_connections == 3
    assert all(c._aborted for c in server.connections)
    assert all("handshake deadline" in c.shed_reason
               for c in server.connections)


def test_header_deadline_resets_dangling_request_streams():
    spec = AttackSpec("slow_headers", duration_s=4.0, streams=6,
                      pace_s=0.02)
    _sim, server, _stack = _session(
        spec, Http2ServerConfig(header_timeout_s=1.0), until=8.0)
    [conn] = server.connections
    assert conn._hardening.timed_out_streams == 6
    assert conn._open_stream_count() == 0  # the table was drained


def test_body_progress_deadline_beats_the_trickle():
    # One byte per 2 s defeats a first-byte timeout but not a
    # progress deadline tighter than the trickle pace.
    spec = AttackSpec("slow_post", duration_s=6.0, streams=6, pace_s=2.0)
    _sim, server, _stack = _session(
        spec, Http2ServerConfig(body_progress_timeout_s=0.5), until=10.0)
    [conn] = server.connections
    assert conn._hardening.timed_out_streams == 6


def test_max_open_streams_caps_below_the_stream_table():
    spec = AttackSpec("slow_headers", duration_s=4.0, streams=40,
                      pace_s=0.02)
    _sim, server, _stack = _session(
        spec, Http2ServerConfig(max_open_streams=8), until=8.0)
    [conn] = server.connections
    assert conn._open_stream_count() <= 8
    assert conn._hardening.capped_streams >= 30


# -- rate budgets -------------------------------------------------------------

@pytest.mark.parametrize("kind,knob", [
    ("ping_flood", "max_pings_per_s"),
    ("settings_flood", "max_settings_per_s"),
    ("stream_reset_churn", "max_resets_per_s"),
])
def test_control_frame_floods_are_shed(kind, knob):
    spec = AttackSpec(kind, duration_s=5.0, rate_per_s=60.0)
    _sim, server, _stack = _session(
        spec, Http2ServerConfig(**{knob: 20.0}), until=8.0)
    assert server.shed_connections == 1
    [conn] = server.connections
    assert conn._aborted
    assert "exceeds budget" in conn.shed_reason


def test_rate_budget_admits_a_polite_peer():
    spec = AttackSpec("ping_flood", duration_s=5.0, rate_per_s=10.0)
    _sim, server, _stack = _session(
        spec, Http2ServerConfig(max_pings_per_s=20.0), until=8.0)
    assert server.shed_connections == 0
    assert all(not c._aborted for c in server.connections)


# -- reap-slowest at the accept cap -------------------------------------------

def test_reap_slowest_established_idler_admits_a_newcomer():
    sim = Simulator(seed=5)
    topo = StandardTopology(sim, TopologyConfig())
    server = Http2Server(sim, topo.server, build_isidewith_site(),
                         Http2ServerConfig(max_connections=1,
                                           reap_slowest_at_capacity=True))
    stack = TcpStack(sim, topo.client)
    # An established-then-silent occupant...
    agent = make_agent(sim, stack, AttackSpec("slow_headers",
                                              duration_s=2.0, streams=2,
                                              pace_s=0.02))
    agent.start()
    # ...and a newcomer dialing well past the 1 s idle floor.
    sim.schedule(5.0, stack.connect, "server", 443, lambda conn: None)
    sim.run(until=8.0)
    assert server.reaped_connections == 1
    victim = server.connections[0]
    assert victim._aborted and "reaped" in victim.shed_reason
    assert server.refused_connections == 0


def test_never_established_connections_are_not_reap_victims():
    sim = Simulator(seed=5)
    topo = StandardTopology(sim, TopologyConfig())
    server = Http2Server(sim, topo.server, build_isidewith_site(),
                         Http2ServerConfig(max_connections=2,
                                           reap_slowest_at_capacity=True))
    stack = TcpStack(sim, topo.client)
    # Two silent dialers occupy both slots but never complete TLS: they
    # are on the handshake deadline's clock, not the reaper's.
    agent = make_agent(sim, stack, AttackSpec("slow_preamble",
                                              duration_s=2.0,
                                              connections=2, pace_s=10.0))
    agent.start()
    sim.schedule(5.0, stack.connect, "server", 443, lambda conn: None)
    sim.run(until=8.0)
    assert server.reaped_connections == 0
    assert server.refused_connections == 1

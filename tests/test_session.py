"""Session runner and evaluation tests."""

import pytest

from repro.core.phases import AttackConfig
from repro.experiments.evaluation import (
    aggregate_table2,
    evaluate_table2,
    sequence_accuracy,
)
from repro.experiments.session import (
    SessionConfig,
    isidewith_size_map,
    run_session,
    run_sessions,
)
from repro.website.isidewith import HTML_PATH, PARTIES, build_isidewith_site


def test_clean_session_completes():
    result = run_session(SessionConfig(seed=0))
    assert result.load is not None and result.load.success
    assert result.report is None
    assert len(result.tx_log) > 100
    assert result.retransmissions >= 0


def test_session_is_deterministic():
    a = run_session(SessionConfig(seed=42, attack=AttackConfig()))
    b = run_session(SessionConfig(seed=42, attack=AttackConfig()))
    assert a.permutation == b.permutation
    assert a.report.predicted_labels == b.report.predicted_labels
    assert a.duration_s == b.duration_s
    assert a.retransmissions == b.retransmissions


def test_different_seeds_differ():
    a = run_session(SessionConfig(seed=1))
    b = run_session(SessionConfig(seed=2))
    assert a.permutation != b.permutation or a.duration_s != b.duration_s


def test_forced_permutation_and_warm():
    forced = list(reversed(PARTIES))
    result = run_session(SessionConfig(seed=0, permutation=forced, warm=True))
    assert list(result.permutation) == forced
    assert result.warm


def test_run_sessions_seeds_by_index():
    results = run_sessions(3, lambda i: SessionConfig(seed=100 + i))
    assert len(results) == 3
    assert len({r.permutation for r in results}) >= 2


def test_size_map_covers_html_and_parties():
    size_map = isidewith_size_map(build_isidewith_site())
    assert set(size_map.labels) == set(PARTIES) | {"html"}


def test_degree_helpers():
    result = run_session(SessionConfig(seed=0))
    assert 0.0 <= result.degree(HTML_PATH) <= 1.0
    assert result.serialized("/no/such/object") is False


def test_evaluate_table2_structure():
    result = run_session(SessionConfig(seed=0, attack=AttackConfig()))
    outcome = evaluate_table2(result)
    assert len(outcome.image_single) == 8
    assert len(outcome.image_all) == 8
    # All-objects success implies single-object success per position.
    for single, ordered in zip(outcome.image_single, outcome.image_all):
        if ordered:
            assert single


def test_evaluate_table2_requires_attack():
    result = run_session(SessionConfig(seed=0))
    with pytest.raises(ValueError):
        evaluate_table2(result)


def test_aggregate_table2():
    results = [run_session(SessionConfig(seed=s, attack=AttackConfig()))
               for s in range(3)]
    outcomes = [evaluate_table2(r) for r in results]
    aggregated = aggregate_table2(outcomes)
    assert aggregated["n"] == 3
    assert len(aggregated["single"]) == 9
    assert len(aggregated["all"]) == 9
    assert all(0 <= x <= 100 for x in aggregated["all"])


def test_sequence_accuracy_bounds():
    result = run_session(SessionConfig(seed=0, attack=AttackConfig()))
    assert 0.0 <= sequence_accuracy(result) <= 1.0


def test_sequence_accuracy_zero_without_attack():
    result = run_session(SessionConfig(seed=0))
    assert sequence_accuracy(result) == 0.0

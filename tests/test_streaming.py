"""Streaming workload and experiment tests."""

import pytest

from repro.experiments.streaming import (
    _accuracy,
    _run_streaming_session,
    run_streaming,
)
from repro.website.streaming import (
    DEFAULT_LADDER,
    SEGMENT_DURATION_S,
    StreamingSite,
    Viewer,
)


def test_site_census():
    site = StreamingSite(n_segments=5)
    assert len(site.objects) == 5 * len(DEFAULT_LADDER)
    for (rung, index), size in site.segment_sizes.items():
        nominal = DEFAULT_LADDER[rung] * SEGMENT_DURATION_S / 8
        assert abs(size - nominal) / nominal <= 0.10
        assert site.lookup(site.segment_path(rung, index)).size == size


def test_rung_of_size_classification():
    site = StreamingSite()
    for rung, bitrate in enumerate(DEFAULT_LADDER):
        nominal = int(bitrate * SEGMENT_DURATION_S / 8)
        assert site.rung_of_size(nominal) == rung
    assert site.rung_of_size(10) is None


def test_sequential_session_completes_all_segments():
    session, trace, site = _run_streaming_session(seed=1, prefetch=1,
                                                  attack_spacing_s=None)
    assert session.completed_segments == site.n_segments
    assert len(session.rung_history) == site.n_segments


def test_abr_climbs_the_ladder_on_a_fast_path():
    session, _, _ = _run_streaming_session(seed=1, prefetch=1,
                                           attack_spacing_s=None)
    assert session.rung_history[0] == 0
    assert max(session.rung_history) >= 2  # adapted upward


def test_pipelined_session_keeps_multiple_in_flight():
    session, trace, site = _run_streaming_session(seed=2, prefetch=3,
                                                  attack_spacing_s=None)
    assert session.completed_segments == site.n_segments


def test_accuracy_helper():
    assert _accuracy([1, 2, 3], [1, 2, 3]) == 1.0
    assert _accuracy([1, 2, 3], [1, 9, 3]) == pytest.approx(2 / 3)
    assert _accuracy([], []) == 0.0


def test_streaming_experiment_shape():
    result = run_streaming(n_sessions=2)
    names = [p.condition for p in result.points]
    assert len(names) == 4
    by_name = dict(zip(names, result.points))
    assert by_name["sequential player"].rung_accuracy_pct \
        > by_name["pipelined player (3 in flight)"].rung_accuracy_pct

"""The LEAK taint engine (repro.lint.taint).

Per-rule fixtures with exact code/trace assertions: the adversary's
information boundary (LEAK001), the no-attacker-in-the-loop defense
rule (LEAK002) and tap passivity (LEAK003), plus sanitizer exemptions,
field-sensitivity through ``dataclass(slots=True)`` records,
interprocedural propagation through helper chains, family selection by
prefix, and the SARIF round-trip for LEAK findings.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source, resolve_codes
from repro.lint.findings import LintReport
from repro.lint.sarif import to_sarif


def findings_for(source: str, module: str, select, path="fixture.py"):
    return lint_source(textwrap.dedent(source), module, path=path,
                       select=select)


def codes(source: str, module: str, select, path="fixture.py"):
    return [f.code for f in findings_for(source, module, select, path)]


# -- LEAK001: the adversary's information boundary ----------------------------

class TestLeak001:
    def test_param_typed_source_flagged_with_branch_trace(self):
        (finding,) = findings_for("""\
            from repro.website.objects import WebObject


            class Observer:
                def __init__(self):
                    self._census = []

                def on_transit(self, view, obj: WebObject):
                    if view.size > 0:
                        self._census.append(obj.size)
        """, "repro.core.observer", ["LEAK001"], path="observer.py")
        assert finding.code == "LEAK001"
        assert finding.law == "ADV_INFO_BOUNDARY"
        assert (finding.line, finding.col) == (10, 12)
        assert finding.trace == (
            "observer.py:8: parameter 'obj' of Observer.on_transit() is "
            "typed WebObject (ground truth)",
            "observer.py:9: branch `if view.size > 0:` is taken",
            "observer.py:10: ground truth flows into self._census "
            "(adversary state)",
        )

    def test_ground_truth_attribute_read_flagged(self):
        (finding,) = findings_for("""\
            class Adversary:
                def read(self, server, clock):
                    self.seen = clock.now
                    self.secret = server.tx_log
        """, "repro.core.adversary", ["LEAK001"])
        assert finding.code == "LEAK001"
        assert finding.line == 4
        assert finding.trace == (
            "fixture.py:4: reads ground truth attribute '.tx_log'",
            "fixture.py:4: ground truth flows into self.secret "
            "(adversary state)",
        )

    def test_interprocedural_helper_chain_stitches_one_trace(self):
        """A secret crossing two helper calls before the store is still
        caught, and the finding's via trace walks the whole chain."""
        (finding,) = findings_for("""\
            from repro.website.objects import WebObject


            class Estimator:
                def _stash(self, value):
                    self._sizes.append(value)

                def _relay(self, value):
                    self._stash(value)

                def learn(self, obj: WebObject):
                    self._relay(obj.size)
        """, "repro.core.estimator", ["LEAK001"])
        assert finding.code == "LEAK001"
        assert finding.line == 12
        assert finding.trace == (
            "fixture.py:11: parameter 'obj' of Estimator.learn() is "
            "typed WebObject (ground truth)",
            "fixture.py:12: Estimator.learn() passes the tainted value "
            "into Estimator._relay()",
            "fixture.py:9: Estimator._relay() passes the tainted value "
            "into Estimator._stash()",
            "fixture.py:6: ground truth flows into self._sizes "
            "(adversary state)",
        )

    def test_returning_the_secret_is_a_sink(self):
        (finding,) = findings_for("""\
            from repro.website.objects import WebObject


            def peek(obj: WebObject):
                return obj.body
        """, "repro.core.predictor", ["LEAK001"])
        assert finding.code == "LEAK001"
        assert "returned from peek()" in finding.message

    def test_imported_producer_call_is_a_source(self):
        (finding,) = findings_for("""\
            from repro.website.sitemap import load_site


            class Planner:
                def cheat(self, name):
                    self.site = load_site(name)
        """, "repro.core.planner", ["LEAK001"])
        assert finding.code == "LEAK001"
        assert finding.trace[0] == (
            "fixture.py:6: calls load_site() imported from "
            "repro.website.sitemap")

    def test_aggregate_count_folds_are_sanctioned(self):
        """len()/sum()/count() reduce a secret collection to a size the
        wire exposes anyway -- the sanitizer escape hatch."""
        assert codes("""\
            from repro.website.objects import WebObject


            class Observer:
                def tally(self, obj: WebObject):
                    self._n = len(obj.body)
                    self._total = sum(len(o.body) for o in obj.children)
        """, "repro.core.observer", ["LEAK001"]) == []

    def test_wire_serialization_is_sanctioned(self):
        assert codes("""\
            from repro.simnet.packet import Packet


            class Observer:
                def on_packet(self, pkt: Packet):
                    self.views.append(pkt.wire_view())
        """, "repro.core.observer", ["LEAK001"]) == []

    def test_field_sensitive_through_dataclass_slots(self):
        """A record wrapping a secret is tainted; the sibling record
        built from sanctioned wire facts stays clean."""
        (finding,) = findings_for("""\
            from dataclasses import dataclass

            from repro.website.objects import WebObject


            @dataclass(slots=True)
            class Cell:
                size: int


            class Estimator:
                def learn(self, obj: WebObject, view):
                    cell = Cell(size=obj.size)
                    clean = Cell(size=view.size)
                    self.clean_cells = clean
                    self.cells = cell
        """, "repro.core.estimator", ["LEAK001"])
        assert finding.line == 16
        assert "self.cells" in finding.message
        assert finding.trace == (
            "fixture.py:12: parameter 'obj' of Estimator.learn() is "
            "typed WebObject (ground truth)",
            "fixture.py:13: wraps the tainted value in Cell",
            "fixture.py:13: tainted value flows into cell",
            "fixture.py:16: ground truth flows into self.cells "
            "(adversary state)",
        )

    def test_sanctioned_wire_surface_is_clean(self):
        """The real pipeline shape: WireView/RecordInfo fields all the
        way down."""
        assert codes("""\
            class Observer:
                def on_transit(self, view):
                    self.sizes.append(view.size)
                    for record in view.records:
                        self.starts.append(record.is_start)
        """, "repro.core.observer", ["LEAK001"]) == []

    def test_only_adversary_modules_are_sinks(self):
        """The same store in evaluation code is not a finding: ground
        truth is exactly what the scorer compares against."""
        assert codes("""\
            from repro.website.objects import WebObject


            class Scorer:
                def truth(self, obj: WebObject):
                    self.expected = obj.size
        """, "repro.analysis.metrics", ["LEAK001"]) == []


# -- LEAK002: no attacker-in-the-loop defenses --------------------------------

class TestLeak002:
    def test_defense_importing_the_pipeline_is_flagged(self):
        found = findings_for("""\
            from repro.core.estimator import SizeEstimator


            class Padder:
                def tune(self, est: SizeEstimator):
                    self.target = est.estimates
        """, "repro.defenses.padding", ["LEAK002"])
        assert [f.code for f in found] == ["LEAK002", "LEAK002"]
        import_finding, flow_finding = found
        assert import_finding.line == 1
        assert "imports SizeEstimator from repro.core.estimator" \
            in import_finding.message
        assert flow_finding.line == 6
        assert flow_finding.law == "DEFENSE_NO_FEEDBACK"
        assert flow_finding.trace == (
            "fixture.py:6: reads adversary output attribute "
            "'.estimates'",
            "fixture.py:6: adversary output flows into self.target "
            "(defense state)",
        )

    def test_oblivious_defense_is_clean(self):
        assert codes("""\
            from repro.http2.settings import Http2Settings


            class Shaper:
                def apply(self, settings: Http2Settings):
                    self.frame_cap = settings.max_frame_size
        """, "repro.defenses.shaping", ["LEAK002"]) == []


# -- LEAK003: tap passivity ---------------------------------------------------

class TestLeak003:
    def test_foreign_mutation_and_mutator_call_flagged(self):
        found = findings_for("""\
            class Watch:
                def on_frame(self, conn, direction, frame, dup):
                    conn.window = 0
                    conn.reset_stream(frame.stream_id)
        """, "repro.invariants.monitors", ["LEAK003"])
        assert [f.code for f in found] == ["LEAK003", "LEAK003"]
        assert "assigns foreign state conn.window" in found[0].message
        assert "state-changing reset_stream()" in found[1].message
        assert all(f.law == "TAP_PASSIVITY" for f in found)

    def test_arming_a_probe_hook_is_the_attach_contract(self):
        assert codes("""\
            class Watch:
                def attach(self, sim, server):
                    sim.probe = self._on_sim_event
                    server.frame_probe = self.on_frame

                def detach(self, sim):
                    sim.probe = None
        """, "repro.invariants.monitors", ["LEAK003"]) == []

    def test_self_rooted_bookkeeping_is_clean(self):
        assert codes("""\
            class Watch:
                def on_frame(self, conn, direction, frame, dup):
                    self.seen += 1
                    self.inflight[frame.stream_id] = direction
                    del self.inflight[frame.stream_id]
        """, "repro.invariants.monitors", ["LEAK003"]) == []

    def test_own_record_types_are_tap_bookkeeping(self):
        """Mutating a tracking record the detector module itself
        defines (and values the function constructed) is bookkeeping,
        not a mutation of the observed system."""
        assert codes("""\
            class _Track:
                def __init__(self):
                    self.count = 0


            class Detector:
                def _observe(self, track: _Track, frame):
                    track.count += 1
                    track.opened[frame.stream_id] = True

                def on_frame(self, conn, direction, frame, dup):
                    fresh = _Track()
                    fresh.count = 1
                    self._observe(fresh, frame)
        """, "repro.invariants.dos_detector", ["LEAK003"]) == []

    def test_outside_tap_modules_not_checked(self):
        assert codes("""\
            class Driver:
                def kick(self, conn):
                    conn.window = 0
        """, "repro.experiments.runner", ["LEAK003"]) == []


# -- family selection ---------------------------------------------------------

class TestSelection:
    def test_family_prefix_selects_every_leak_code(self):
        assert resolve_codes(select=["LEAK"]) \
            == frozenset({"LEAK001", "LEAK002", "LEAK003"})

    def test_family_prefix_ignore_drops_the_family(self):
        enabled = resolve_codes(ignore=["LEAK"])
        assert not any(code.startswith("LEAK") for code in enabled)
        assert "DET001" in enabled

    def test_exact_codes_still_work_and_unknown_still_raise(self):
        assert resolve_codes(select=["LEAK002"]) == frozenset({"LEAK002"})
        with pytest.raises(ValueError):
            resolve_codes(select=["LEAK999"])


# -- SARIF round-trip ---------------------------------------------------------

class TestSarifRoundTrip:
    def test_leak_finding_round_trips_with_code_flow(self):
        findings = findings_for("""\
            from repro.website.objects import WebObject


            class Observer:
                def on_transit(self, view, obj: WebObject):
                    if view.size > 0:
                        self._census.append(obj.size)
        """, "repro.core.observer", ["LEAK001"], path="observer.py")
        doc = to_sarif(LintReport(findings=findings, files_checked=1))
        driver = doc["runs"][0]["tool"]["driver"]
        assert {"LEAK001", "LEAK002", "LEAK003"} \
            <= {rule["id"] for rule in driver["rules"]}
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "LEAK001"
        assert result["properties"]["law"] == "ADV_INFO_BOUNDARY"
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locations) == len(findings[0].trace)
        notes = [loc["location"]["message"]["text"] for loc in locations]
        assert "branch `if view.size > 0:` is taken" in notes
        hop_lines = [loc["location"]["physicalLocation"]["region"]
                     ["startLine"] for loc in locations]
        assert hop_lines == [5, 6, 7]

"""Send-buffer slicing and receive-buffer reassembly tests."""

import pytest

from repro.tcp.buffer import ReceiveBuffer, SendBuffer
from repro.tls.record import APPLICATION_DATA, TlsRecord


def record(n):
    return TlsRecord(content_type=APPLICATION_DATA, payload_len=n - 21)


def test_write_returns_monotonic_offsets():
    buf = SendBuffer()
    assert buf.write(record(100)) == 0
    assert buf.write(record(50)) == 100
    assert buf.total_written == 150


def test_slice_whole_record():
    buf = SendBuffer()
    rec = record(100)
    buf.write(rec)
    slices = buf.slice_stream(0, 100)
    assert len(slices) == 1
    assert slices[0].record is rec
    assert slices[0].is_start and slices[0].is_end


def test_slice_spanning_records():
    buf = SendBuffer()
    first, second = record(100), record(100)
    buf.write(first)
    buf.write(second)
    slices = buf.slice_stream(50, 100)
    assert [s.record for s in slices] == [first, second]
    assert slices[0].offset == 50 and slices[0].length == 50
    assert not slices[0].is_start and slices[0].is_end
    assert slices[1].offset == 0 and slices[1].length == 50
    assert slices[1].is_start and not slices[1].is_end


def test_slice_lengths_sum():
    buf = SendBuffer()
    for n in (64, 1400, 333, 1400):
        buf.write(record(n))
    slices = buf.slice_stream(10, 3000)
    assert sum(s.length for s in slices) == 3000


def test_slice_beyond_stream_raises():
    buf = SendBuffer()
    buf.write(record(100))
    with pytest.raises(ValueError):
        buf.slice_stream(50, 100)


def test_release_prunes_acked_records():
    buf = SendBuffer()
    for _ in range(5):
        buf.write(record(100))
    buf.release(250)
    assert buf.retained_records() == 3  # record at 200 is partially acked
    # Remaining stream still sliceable.
    slices = buf.slice_stream(250, 100)
    assert sum(s.length for s in slices) == 100


def test_slice_below_released_window_raises():
    buf = SendBuffer()
    for _ in range(3):
        buf.write(record(100))
    buf.release(200)
    with pytest.raises(ValueError):
        buf.slice_stream(0, 100)


def make_receiver(deliver_duplicates=False):
    delivered = []
    buf = ReceiveBuffer(lambda slices, dup: delivered.append((slices, dup)),
                        deliver_duplicates=deliver_duplicates)
    return buf, delivered


def seg_slices(rec):
    from repro.tcp.segment import RecordSlice
    return (RecordSlice(rec, 0, rec.wire_len),)


def test_in_order_delivery():
    buf, delivered = make_receiver()
    rec = record(100)
    assert buf.on_segment(0, 100, seg_slices(rec)) is True
    assert buf.rcv_nxt == 100
    assert len(delivered) == 1 and delivered[0][1] is False


def test_out_of_order_buffered_then_drained():
    buf, delivered = make_receiver()
    r1, r2, r3 = record(100), record(100), record(100)
    assert buf.on_segment(100, 100, seg_slices(r2)) is False
    assert buf.on_segment(200, 100, seg_slices(r3)) is False
    assert len(delivered) == 0
    assert buf.on_segment(0, 100, seg_slices(r1)) is True
    assert buf.rcv_nxt == 300
    assert [s[0][0].record for s in delivered] == [r1, r2, r3]


def test_duplicate_ignored_by_default():
    buf, delivered = make_receiver()
    rec = record(100)
    buf.on_segment(0, 100, seg_slices(rec))
    assert buf.on_segment(0, 100, seg_slices(rec)) is False
    assert len(delivered) == 1
    assert buf.duplicate_segments == 1


def test_duplicate_redelivered_in_paper_mode():
    buf, delivered = make_receiver(deliver_duplicates=True)
    rec = record(100)
    buf.on_segment(0, 100, seg_slices(rec))
    buf.on_segment(0, 100, seg_slices(rec))
    assert [dup for _, dup in delivered] == [False, True]


def test_repeated_ooo_segment_not_double_buffered():
    buf, delivered = make_receiver()
    rec = record(100)
    buf.on_segment(100, 100, seg_slices(rec))
    buf.on_segment(100, 100, seg_slices(rec))
    buf.on_segment(0, 100, seg_slices(record(100)))
    # Drain delivers the buffered segment exactly once.
    assert len(delivered) == 2


def test_buffered_segments_counter():
    buf, _ = make_receiver()
    buf.on_segment(100, 100, seg_slices(record(100)))
    buf.on_segment(300, 100, seg_slices(record(100)))
    assert buf.buffered_segments() == 2

"""TCP connection integration tests over a direct link rig."""

import pytest

from repro.simnet.link import LinkConfig
from repro.tcp.connection import TcpConfig
from repro.tls.record import APPLICATION_DATA, TlsRecord

from tests.conftest import make_rig


def record(n):
    return TlsRecord(content_type=APPLICATION_DATA, payload_len=n - 21)


class Endpoints:
    """Client/server connection pair with delivery capture."""

    def __init__(self, rig):
        self.rig = rig
        self.server_conn = None
        self.client_conn = None
        self.server_rx = []
        self.client_rx = []

        def on_accept(conn):
            self.server_conn = conn
            conn.on_deliver = lambda s, dup: self.server_rx.append((s, dup))

        rig.server_tcp.listen(443, on_accept)

        def on_established(conn):
            conn.on_deliver = lambda s, dup: self.client_rx.append((s, dup))

        self.client_conn = rig.client_tcp.connect("server", 443,
                                                  on_established)

    def received_bytes(self, side="server"):
        inbox = self.server_rx if side == "server" else self.client_rx
        return sum(s.length for slices, _ in inbox for s in slices)


def test_handshake_establishes_both_ends(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    assert ends.client_conn.established
    assert ends.server_conn is not None and ends.server_conn.established


def test_small_transfer_delivered_intact(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    ends.client_conn.send_record(record(500))
    rig.run(1.0)
    assert ends.received_bytes("server") == 500


def test_large_transfer_delivered_intact(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    total = 0
    for _ in range(100):
        ends.client_conn.send_record(record(1400))
        total += 1400
    rig.run(5.0)
    assert ends.received_bytes("server") == total


def test_bidirectional_transfer(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    ends.client_conn.send_record(record(300))
    rig.run(0.5)
    ends.server_conn.send_record(record(4200))
    rig.run(1.0)
    assert ends.received_bytes("server") == 300
    assert ends.received_bytes("client") == 4200


def test_transfer_survives_heavy_loss():
    rig = make_rig(seed=2, link=LinkConfig(propagation_s=0.01,
                                           loss_rate=0.10))
    ends = Endpoints(rig)
    rig.run(3.0)
    assert ends.client_conn.established
    total = 0
    for _ in range(60):
        ends.client_conn.send_record(record(1400))
        total += 1400
    rig.run(30.0)
    assert ends.received_bytes("server") == total
    stats = ends.client_conn.stats
    assert stats.retransmits > 0


def test_cwnd_limits_flight(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    for _ in range(200):
        ends.client_conn.send_record(record(1400))
    # Immediately after writing, flight cannot exceed cwnd.
    conn = ends.client_conn
    assert conn.flight_size <= conn.cc.cwnd
    rig.run(10.0)
    assert ends.received_bytes("server") == 200 * 1400


def test_fast_retransmit_triggers_on_dupacks():
    # A single dropped data segment among many: dup acks from the
    # receiver must trigger fast retransmit well before the RTO.
    rig = make_rig(seed=11, link=LinkConfig(propagation_s=0.01,
                                            loss_rate=0.02))
    ends = Endpoints(rig)
    rig.run(2.0)
    for _ in range(300):
        ends.client_conn.send_record(record(1400))
    rig.run(30.0)
    assert ends.received_bytes("server") == 300 * 1400
    assert ends.client_conn.stats.retransmits_fast > 0


def test_rtt_sampling_reasonable(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    ends.client_conn.send_record(record(1000))
    rig.run(1.0)
    # Path RTT is ~20 ms (2 x 10 ms propagation).
    assert ends.client_conn.rto.srtt == pytest.approx(0.02, abs=0.01)


def test_close_signals_peer(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    closed = []
    ends.server_conn.on_closed = lambda conn: closed.append(conn)
    ends.client_conn.close()
    rig.run(1.0)
    assert closed
    assert ends.client_conn.state == "closed"


def test_abort_is_silent(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    ends.client_conn.abort()
    rig.run(1.0)
    assert ends.client_conn.state == "closed"
    assert ends.server_conn.state == "established"


def test_send_on_closed_connection_raises(rig):
    ends = Endpoints(rig)
    rig.run(1.0)
    ends.client_conn.close()
    with pytest.raises(RuntimeError):
        ends.client_conn.send_record(record(100))


def test_syn_retransmission_on_lossy_path():
    rig = make_rig(seed=5, link=LinkConfig(propagation_s=0.01,
                                           loss_rate=0.35))
    ends = Endpoints(rig)
    rig.run(30.0)
    assert ends.client_conn.established


def test_duplicate_delivery_mode_resurfaces_retransmits():
    server_tcp = TcpConfig(deliver_duplicates=True)
    rig = make_rig(seed=0, server_tcp=server_tcp)
    ends = Endpoints(rig)
    rig.run(1.0)
    ends.client_conn.send_record(record(800))
    # Let the segment reach the server (one-way ~10 ms) but retransmit
    # before its ACK returns, so the copy arrives as a duplicate.
    rig.run(0.015)
    ends.client_conn._retransmit(ends.client_conn.snd_una, reason="timeout")
    rig.run(1.0)
    dups = [dup for _, dup in ends.server_rx if dup]
    assert dups, "duplicate copy should be re-delivered in paper mode"


def test_ephemeral_ports_unique(rig):
    first = rig.client_tcp.connect("server", 443, lambda c: None)
    second = rig.client_tcp.connect("server", 443, lambda c: None)
    assert first.local_port != second.local_port


def test_stack_ignores_unknown_segments(rig):
    from repro.simnet.packet import Packet
    from repro.tcp.segment import TcpSegment
    stray = TcpSegment(src="server", dst="client", src_port=9, dst_port=9)
    rig.client_tcp.handle_packet(Packet(src="server", dst="client", size=54,
                                        segment=stray))

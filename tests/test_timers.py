"""TimerWheel: named one-shot deadlines on the simulator clock.

The contract the hardening layer leans on: re-arm replaces, cancel is
idempotent, the fire path removes the handle before the callback runs,
and -- crucially for byte-identity -- a wheel with nothing armed
schedules zero simulator events.
"""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.timers import TimerWheel


def test_armed_timer_fires_once_with_its_args():
    sim = Simulator(seed=1)
    wheel = TimerWheel(sim)
    hits = []
    wheel.arm("deadline", 2.0, hits.append, "expired")
    assert wheel.armed("deadline")
    sim.run(until=10.0)
    assert hits == ["expired"]
    assert wheel.fired == 1
    assert not wheel.armed("deadline")
    assert wheel.armed_count == 0


def test_cancel_disarms_and_is_idempotent():
    sim = Simulator(seed=1)
    wheel = TimerWheel(sim)
    hits = []
    wheel.arm("deadline", 2.0, hits.append, "expired")
    wheel.cancel("deadline")
    wheel.cancel("deadline")  # idempotent: second cancel is a no-op
    wheel.cancel("never-armed")
    sim.run(until=10.0)
    assert hits == []
    assert wheel.cancelled == 1
    assert wheel.fired == 0


def test_rearm_replaces_the_previous_deadline():
    sim = Simulator(seed=1)
    wheel = TimerWheel(sim)
    hits = []
    wheel.arm("deadline", 1.0, hits.append, "first")
    wheel.arm("deadline", 5.0, hits.append, "second")
    assert wheel.armed_count == 1
    sim.run(until=2.0)
    assert hits == []  # the 1.0s deadline was replaced, not kept
    sim.run(until=10.0)
    assert hits == ["second"]
    assert wheel.cancelled == 1 and wheel.fired == 1


def test_callback_may_rearm_its_own_name():
    sim = Simulator(seed=1)
    wheel = TimerWheel(sim)
    ticks = []

    def tick() -> None:
        ticks.append(sim.now)
        if len(ticks) < 3:
            wheel.arm("tick", 1.0, tick)

    wheel.arm("tick", 1.0, tick)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]
    assert wheel.fired == 3 and wheel.cancelled == 0


def test_cancel_all_clears_every_deadline():
    sim = Simulator(seed=1)
    wheel = TimerWheel(sim)
    hits = []
    for name in ("a", "b", "c"):
        wheel.arm(name, 1.0, hits.append, name)
    wheel.cancel_all()
    sim.run(until=10.0)
    assert hits == []
    assert wheel.armed_count == 0
    assert wheel.cancelled == 3


def test_negative_delay_is_rejected():
    wheel = TimerWheel(Simulator(seed=1))
    with pytest.raises(ValueError, match="delay_s must be >= 0"):
        wheel.arm("deadline", -0.1, lambda: None)


def test_idle_wheel_schedules_zero_events():
    # The byte-identity contract: owning a wheel costs nothing.
    sim = Simulator(seed=1)
    TimerWheel(sim)
    sim.run(until=100.0)
    assert sim.processed_events == 0

"""TLS record layer and session tests."""

import pytest

from repro.tls.record import (
    AEAD_OVERHEAD,
    APPLICATION_DATA,
    HANDSHAKE,
    RECORD_HEADER_LEN,
    TlsRecord,
)
from repro.tls.session import HandshakeProfile, TlsSession

from tests.conftest import make_rig


def test_record_wire_length_includes_framing():
    rec = TlsRecord(content_type=APPLICATION_DATA, payload_len=100)
    assert rec.wire_len == 100 + RECORD_HEADER_LEN + AEAD_OVERHEAD


def test_record_ids_unique():
    a = TlsRecord(content_type=APPLICATION_DATA, payload_len=1)
    b = TlsRecord(content_type=APPLICATION_DATA, payload_len=1)
    assert a.record_id != b.record_id


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        TlsRecord(content_type=APPLICATION_DATA, payload_len=-1)


class TlsRig:
    """TLS sessions over a real TCP pair."""

    def __init__(self, rig):
        self.rig = rig
        self.client_session = None
        self.server_session = None
        self.client_records = []
        self.server_records = []
        self.established = []

        def on_accept(conn):
            self.server_session = TlsSession(conn, role="server")
            self.server_session.on_established = (
                lambda s: self.established.append("server"))
            self.server_session.on_application_record = (
                lambda r, dup: self.server_records.append((r, dup)))

        rig.server_tcp.listen(443, on_accept)

        def on_connect(conn):
            self.client_session = TlsSession(conn, role="client")
            self.client_session.on_established = (
                lambda s: self.established.append("client"))
            self.client_session.on_application_record = (
                lambda r, dup: self.client_records.append((r, dup)))
            self.client_session.start_handshake()

        rig.client_tcp.connect("server", 443, on_connect)


def test_handshake_completes_both_sides(rig):
    tls = TlsRig(rig)
    rig.run(2.0)
    assert set(tls.established) == {"client", "server"}


def test_handshake_takes_about_two_rtts(rig):
    done = {}

    def on_accept(conn):
        TlsSession(conn, role="server")

    rig.server_tcp.listen(443, on_accept)

    def on_connect(conn):
        session = TlsSession(conn, role="client")
        session.on_established = (
            lambda s: done.setdefault("client", rig.sim.now))
        session.start_handshake()

    rig.client_tcp.connect("server", 443, on_connect)
    rig.run(2.0)
    # TCP handshake (1 RTT) + TLS exchange (~2 RTT) at 20 ms RTT.
    assert 0.04 <= done["client"] <= 0.12


def test_application_records_delivered_whole(rig):
    tls = TlsRig(rig)
    rig.run(2.0)
    sent = tls.client_session.send_application(("payload",), 5000)
    rig.run(1.0)
    assert len(tls.server_records) == 1
    received, dup = tls.server_records[0]
    assert received is sent
    assert dup is False


def test_send_before_established_raises(rig):
    tls = TlsRig(rig)
    with pytest.raises(RuntimeError):
        # The session object exists but the handshake hasn't run.
        TlsSession.__dict__  # placate linters; the real call below
        tls_session = tls.client_session
        if tls_session is None:
            raise RuntimeError("not connected yet")
        tls_session.send_application((), 10)


def test_server_cannot_start_handshake(rig):
    tls = TlsRig(rig)
    rig.run(2.0)
    with pytest.raises(RuntimeError):
        tls.server_session.start_handshake()


def test_custom_handshake_profile_sizes(rig):
    profile = HandshakeProfile(client_hello=300, server_flight=(900, 900),
                               client_finished=40)
    sizes = []

    def on_accept(conn):
        server = TlsSession(conn, role="server", profile=profile)

    rig.server_tcp.listen(444, on_accept)

    def on_connect(conn):
        original = conn.send_record

        def wrapped(record):
            sizes.append(record.payload_len)
            return original(record)

        conn.send_record = wrapped
        client = TlsSession(conn, role="client", profile=profile)
        client.start_handshake()

    rig.client_tcp.connect("server", 444, on_connect)
    rig.run(2.0)
    assert sizes[0] == 300       # ClientHello
    assert sizes[1] == 40        # Finished (after the 2-record flight)


def test_bad_role_rejected(rig):
    ends = {}

    def on_accept(conn):
        ends["conn"] = conn

    rig.server_tcp.listen(443, on_accept)
    conn = rig.client_tcp.connect("server", 443, lambda c: None)
    rig.run(1.0)
    with pytest.raises(ValueError):
        TlsSession(conn, role="observer")

"""Trace recorder and packet wire-view tests."""

import pytest

from repro.simnet.middlebox import CLIENT_TO_SERVER, SERVER_TO_CLIENT
from repro.simnet.packet import HEADER_OVERHEAD, Packet, RecordInfo, WireView
from repro.simnet.trace import TraceRecorder
from repro.tcp.segment import RecordSlice, TcpSegment
from repro.tls.record import APPLICATION_DATA, HANDSHAKE, TlsRecord


def seg_packet(record, offset=0, length=None, retx=0, src="server",
               dst="client"):
    length = length if length is not None else record.wire_len - offset
    seg = TcpSegment(src=src, dst=dst, src_port=443, dst_port=40000,
                     seq=0, payload_len=length,
                     slices=(RecordSlice(record, offset, length),),
                     retx_count=retx)
    return Packet(src=src, dst=dst, size=HEADER_OVERHEAD + length,
                  segment=seg)


def app_record(payload=1379):
    return TlsRecord(content_type=APPLICATION_DATA, payload_len=payload)


def test_wire_view_exposes_cleartext_only_fields():
    record = app_record(100)
    packet = seg_packet(record)
    view = packet.wire_view()
    assert view.size == HEADER_OVERHEAD + record.wire_len
    assert view.tcp.src_port == 443
    assert view.has_application_data
    assert view.application_bytes == record.wire_len
    info = view.records[0]
    assert info.content_type == APPLICATION_DATA
    assert info.record_wire_len == record.wire_len
    assert info.is_start and info.is_end


def test_wire_view_partial_record_slices():
    record = app_record(2000)
    first = seg_packet(record, offset=0, length=1000).wire_view()
    second = seg_packet(record, offset=1000).wire_view()
    assert first.records[0].is_start and not first.records[0].is_end
    assert not second.records[0].is_start and second.records[0].is_end


def test_pure_ack_view():
    seg = TcpSegment(src="client", dst="server", src_port=40000, dst_port=443)
    view = Packet(src="client", dst="server", size=HEADER_OVERHEAD,
                  segment=seg).wire_view()
    assert view.tcp.is_pure_ack
    assert not view.has_application_data


def test_recorder_stores_and_filters():
    recorder = TraceRecorder()
    record = app_record()
    recorder(0.1, CLIENT_TO_SERVER, seg_packet(record, src="client",
                                               dst="server").wire_view(), False)
    recorder(0.2, SERVER_TO_CLIENT, seg_packet(record).wire_view(), False)
    recorder(0.3, SERVER_TO_CLIENT, seg_packet(record).wire_view(), True)
    assert len(recorder) == 3
    assert len(recorder.packets(SERVER_TO_CLIENT)) == 1
    assert len(recorder.packets(SERVER_TO_CLIENT, include_dropped=True)) == 2
    assert len(recorder.application_packets(CLIENT_TO_SERVER)) == 1


def test_recorder_completed_records_single_packet():
    recorder = TraceRecorder()
    record = app_record(500)
    recorder(1.0, SERVER_TO_CLIENT, seg_packet(record).wire_view(), False)
    completed = recorder.completed_records(SERVER_TO_CLIENT)
    assert len(completed) == 1
    assert completed[0].wire_len == record.wire_len
    assert completed[0].start_time == completed[0].end_time == 1.0


def test_recorder_reassembles_multi_packet_record():
    recorder = TraceRecorder()
    record = app_record(3000)
    recorder(1.0, SERVER_TO_CLIENT,
             seg_packet(record, 0, 1400).wire_view(), False)
    recorder(1.1, SERVER_TO_CLIENT,
             seg_packet(record, 1400, 1400).wire_view(), False)
    recorder(1.2, SERVER_TO_CLIENT,
             seg_packet(record, 2800).wire_view(), False)
    completed = recorder.completed_records(SERVER_TO_CLIENT)
    assert len(completed) == 1
    assert completed[0].start_time == 1.0
    assert completed[0].end_time == 1.2


def test_recorder_dropped_packets_do_not_complete_records():
    recorder = TraceRecorder()
    record = app_record(500)
    recorder(1.0, SERVER_TO_CLIENT, seg_packet(record).wire_view(), True)
    assert recorder.completed_records(SERVER_TO_CLIENT) == []


def test_recorder_content_type_filter():
    recorder = TraceRecorder()
    handshake = TlsRecord(content_type=HANDSHAKE, payload_len=400)
    recorder(1.0, SERVER_TO_CLIENT, seg_packet(handshake).wire_view(), False)
    assert recorder.completed_records(SERVER_TO_CLIENT, content_type=23) == []
    assert len(recorder.completed_records(SERVER_TO_CLIENT,
                                          content_type=None)) == 1


def test_recorder_retransmit_filter():
    recorder = TraceRecorder()
    record = app_record(100)
    recorder(1.0, CLIENT_TO_SERVER,
             seg_packet(record, retx=1, src="client").wire_view(), False)
    recorder(1.1, CLIENT_TO_SERVER,
             seg_packet(record, src="client").wire_view(), False)
    assert len(recorder.retransmitted_packets()) == 1


def test_recorder_time_span_and_clear():
    recorder = TraceRecorder()
    assert recorder.time_span() == (0.0, 0.0)
    record = app_record(100)
    recorder(1.0, SERVER_TO_CLIENT, seg_packet(record).wire_view(), False)
    recorder(3.0, SERVER_TO_CLIENT, seg_packet(record).wire_view(), False)
    assert recorder.time_span() == (1.0, 3.0)
    recorder.clear()
    assert len(recorder) == 0


def test_recorder_count_predicate():
    recorder = TraceRecorder()
    record = app_record(100)
    for t in (1.0, 2.0, 3.0):
        recorder(t, SERVER_TO_CLIENT, seg_packet(record).wire_view(), False)
    assert recorder.count(lambda p: p.time > 1.5) == 2


def test_topology_wiring():
    from repro.simnet.engine import Simulator
    from repro.simnet.topology import StandardTopology, TopologyConfig
    sim = Simulator()
    topo = StandardTopology(sim, TopologyConfig(client_propagation_s=0.004,
                                                server_propagation_s=0.008))
    assert topo.base_rtt_s() == pytest.approx(0.024)
    # A packet from the client transits the middlebox and gets captured.
    record = app_record(100)
    topo.client.send_packet(seg_packet(record, src="client", dst="server"))
    sim.run(until=1.0)
    assert len(topo.trace) == 1
    assert topo.trace.packets(CLIENT_TO_SERVER)


def test_result_table_formatting():
    from repro.experiments.results import ResultTable
    table = ResultTable("Title", ["a", "bb"])
    table.add_row(1, 2.345)
    table.add_row("xx", "yy")
    text = table.to_text()
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "2.3" in text and "xx" in text
    with pytest.raises(ValueError):
        table.add_row(1)

"""Website model tests: isidewith census, plans, generator."""

import random

import pytest

from repro.website.generator import RandomSiteBuilder
from repro.website.isidewith import (
    HTML_PATH,
    HTML_SIZE,
    IsideWithSite,
    PARTIES,
    PARTY_IMAGE_SIZES,
    build_isidewith_site,
)
from repro.website.objects import (
    StaticGeneration,
    SurveyResultGeneration,
    WebObject,
)
from repro.website.sitemap import Site


def rng():
    return random.Random(7)


# -- objects -----------------------------------------------------------------

def test_object_requires_positive_size():
    with pytest.raises(ValueError):
        WebObject(path="/x", size=0)


def test_static_generation_plan():
    plan = StaticGeneration(delay_s=0.2).plan(rng(), 1234)
    assert plan == [(0.2, 1234)]


def test_survey_generation_covers_size():
    profile = SurveyResultGeneration()
    plan = profile.plan(rng(), HTML_SIZE)
    assert sum(chunk for _, chunk in plan) == HTML_SIZE
    assert all(gap >= 0 for gap, _ in plan)


def test_survey_generation_bimodal():
    profile = SurveyResultGeneration(fast_prob=0.5)
    totals = []
    r = rng()
    for _ in range(200):
        plan = profile.plan(r, HTML_SIZE)
        totals.append(sum(gap for gap, _ in plan))
    fast = sum(1 for t in totals if t < 0.06)
    slow = sum(1 for t in totals if t > 0.08)
    assert fast > 40 and slow > 40


# -- site --------------------------------------------------------------------

def test_site_lookup_and_membership():
    site = Site("s", "a.example")
    obj = site.add(WebObject(path="/x", size=10))
    assert site.lookup("/x") is obj
    assert site.lookup("/missing") is None
    assert "/x" in site and len(site) == 1


def test_duplicate_path_rejected():
    site = Site("s", "a.example")
    site.add(WebObject(path="/x", size=10))
    with pytest.raises(ValueError):
        site.add(WebObject(path="/x", size=20))


def test_unique_size_map_excludes_collisions():
    site = Site("s", "a.example")
    site.add(WebObject(path="/a", size=100))
    site.add(WebObject(path="/b", size=100))
    site.add(WebObject(path="/c", size=200))
    assert site.unique_size_map() == {200: "/c"}


# -- isidewith ------------------------------------------------------------------

def test_census_matches_paper():
    site = build_isidewith_site()
    html = site.lookup(HTML_PATH)
    assert html.size == 9_500
    assert html.is_dynamic
    for party in PARTIES:
        image = site.lookup(IsideWithSite.image_path(party))
        assert 5_000 <= image.size <= 16_049
        assert not image.cacheable


def test_emblem_sizes_unique_and_separated():
    sizes = sorted(PARTY_IMAGE_SIZES.values()) + [HTML_SIZE]
    sizes.sort()
    for a, b in zip(sizes, sizes[1:]):
        assert b - a > 800  # 2x the predictor tolerance


def test_aux_sizes_avoid_identification_bands():
    site = build_isidewith_site()
    targets = set(PARTY_IMAGE_SIZES.values()) | {HTML_SIZE}
    for path, obj in site.objects.items():
        if path == HTML_PATH or "emblem" in path:
            continue
        for target in targets:
            assert abs(obj.size - target) > 400, (path, obj.size, target)


def test_plan_structure():
    site = build_isidewith_site()
    plan = site.plan_load(rng())
    assert len(plan.initial) == 5
    assert plan.html.path == HTML_PATH
    # 47 embedded objects: 39 aux + 8 emblems (+2 scripted companions).
    embedded = (len(plan.head_resources) + len(plan.body_resources)
                + sum(1 for r in plan.scripted if "emblem" in r.path))
    assert embedded == 47
    assert plan.html.gap_s >= 0.4


def test_plan_html_is_sixth_request():
    site = build_isidewith_site()
    plan = site.plan_load(rng())
    ordered = plan.all_requests()
    assert ordered[5].path == HTML_PATH


def test_plan_permutation_sampled_and_recorded():
    site = build_isidewith_site()
    plan = site.plan_load(rng())
    assert sorted(plan.meta["permutation"]) == sorted(PARTIES)
    image_order = [r.path for r in plan.scripted if "emblem" in r.path]
    assert image_order == [IsideWithSite.image_path(p)
                           for p in plan.meta["permutation"]]


def test_plan_respects_forced_permutation_and_warm():
    site = build_isidewith_site()
    forced = list(reversed(PARTIES))
    plan = site.plan_load(rng(), permutation=forced, warm=True)
    assert list(plan.meta["permutation"]) == forced
    assert plan.meta["warm"] is True
    assert all(r.cached for r in plan.head_resources)


def test_bad_permutation_rejected():
    site = build_isidewith_site()
    with pytest.raises(ValueError):
        site.plan_load(rng(), permutation=["democratic"] * 8)


def test_warm_plan_still_requests_initial_and_images():
    site = build_isidewith_site()
    plan = site.plan_load(rng(), warm=True)
    uncached = plan.uncached_paths()
    assert HTML_PATH in uncached
    assert len([p for p in uncached if "emblem" in p]) == 8
    assert len([r for r in plan.initial if not r.cached]) == 5


# -- generator --------------------------------------------------------------------

def test_generator_builds_requested_pages():
    site = RandomSiteBuilder(n_pages=5, objects_per_page=4, seed=3).build()
    assert len(site.pages) == 5
    for page in site.pages:
        assert site.lookup(page.html_path) is not None
        for path in page.embedded:
            assert site.lookup(path) is not None


def test_generator_sizes_unique():
    site = RandomSiteBuilder(n_pages=6, objects_per_page=5, seed=1).build()
    sizes = [obj.size for obj in site.objects.values()]
    assert len(sizes) == len(set(sizes))


def test_generator_deterministic():
    a = RandomSiteBuilder(seed=9).build()
    b = RandomSiteBuilder(seed=9).build()
    assert {p: o.size for p, o in a.objects.items()} == \
           {p: o.size for p, o in b.objects.items()}


def test_generator_plan_load():
    site = RandomSiteBuilder(n_pages=3, seed=2).build()
    plan = site.plan_load(rng(), 1)
    assert plan.html.path == site.pages[1].html_path
    assert plan.meta["page_id"] == 1

"""Supervised persistent pool + sweep ledger: the robustness contract.

The scenarios here are the acceptance criteria of the worker runner:
byte-identical results vs serial, crash containment with respawn and
correct attempt accounting, kill -9 chaos, poison-cell quarantine,
heartbeat stall detection, dirty-state refusal, graceful degradation,
and ledger-based resume that executes exactly the missing cells even
with the cache disabled.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.ledger import LEDGER_FORMAT, SweepLedger, open_ledger
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    code_version,
    run_grid,
)
from repro.experiments.workers import (
    CHAOS_ENV,
    WorkerStateGuard,
    WorkerStats,
    run_persistent,
    stall_exceeded,
)

TOY = "tests.test_runner:toy_cell"
CRASH = "tests.test_runner_faults:crash_cell"
CRASH_ONCE = "tests.test_runner_faults:crash_once_cell"
FLAKY = "tests.test_runner_faults:flaky_cell"
LOGGED = "tests.test_workers:logged_cell"
DIRTY = "tests.test_workers:env_dirty_cell"
SIGSTOP = "tests.test_workers:sigstop_cell"
KILLER = "tests.test_workers:sigterm_once_cell"

REPO_ROOT = Path(__file__).resolve().parents[1]


# -- hostile cells (resolved by dotted path inside workers) ------------------

def logged_cell(seed: int, log: str = "", delay: float = 0.0) -> dict:
    """Appends its seed to ``log`` so tests can see which cells ran."""
    if delay:
        time.sleep(delay)
    with open(log, "a", encoding="utf-8") as handle:
        handle.write(f"{seed}\n")
    return {"value": seed * 2, "processed_events": 1}


def env_dirty_cell(seed: int) -> dict:
    """Succeeds, but leaves the worker's environment contaminated."""
    os.environ["REPRO_TEST_DIRT"] = str(seed)
    return {"value": seed}


def sigstop_cell(seed: int) -> dict:
    """Freezes its own process: alive but silent -- only the heartbeat
    watchdog can tell this apart from a long-running cell."""
    os.kill(os.getpid(), signal.SIGSTOP)
    return {}  # pragma: no cover - never reached before the kill


def sigterm_once_cell(seed: int, marker_dir: str = "") -> dict:
    """First run: SIGTERMs the *supervisor* mid-sweep and never reports
    back.  Subsequent runs (the resume) complete normally."""
    marker = Path(marker_dir, "sigterm")
    if not marker.exists():
        marker.touch()
        time.sleep(0.5)  # let the other worker land a few done entries
        os.kill(os.getppid(), signal.SIGTERM)
        time.sleep(3.0)  # the supervisor is long gone by now
        os._exit(0)  # release inherited pipes without replying
    return {"value": seed}


def _metrics_bytes(grid) -> str:
    return json.dumps(grid.metrics())


# -- byte-identity -----------------------------------------------------------

def test_workers_byte_identical_to_serial(tmp_path):
    specs = [RunSpec.make(TOY, s, scale=1.5) for s in range(8)]
    serial = run_grid(specs, jobs=1, cache=RunCache.disabled())
    pooled = run_grid(specs, workers=3, cache=RunCache.disabled())
    assert _metrics_bytes(serial) == _metrics_bytes(pooled)
    assert pooled.worker_stats is not None
    assert pooled.worker_stats.spawned == 3
    assert not pooled.worker_stats.crashed


def test_telemetry_line_stays_single_line_with_worker_stats():
    specs = [RunSpec.make(TOY, s) for s in range(3)]
    grid = run_grid(specs, workers=2, cache=RunCache.disabled())
    telemetry = GridTelemetry()
    telemetry.add(grid)
    line = telemetry.line()
    assert line.startswith("runner:")
    assert "workers:" in line
    assert "\n" not in line


# -- crash containment and attempt accounting --------------------------------

def test_worker_crash_respawns_and_retries_the_cell(tmp_path):
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    specs = [RunSpec.make(TOY, 0),
             RunSpec.make(CRASH_ONCE, 1, marker_dir=str(marker_dir)),
             RunSpec.make(TOY, 2)]
    # workers=1 so the crash leaves an empty pool: the sweep can only
    # finish if the supervisor respawns.
    grid = run_grid(specs, workers=1, retries=2, retry_backoff_s=0.05,
                    cache=RunCache.disabled())
    assert len(grid.ok) == 3
    crashed = grid.results[1]
    assert crashed.attempts == 2
    stats = grid.worker_stats
    assert stats.crashed >= 1
    assert stats.respawned >= 1
    assert any(e["code"] == "WORKER_CRASH" for e in stats.events)


def test_attempts_agree_between_result_and_ledger(tmp_path):
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    ledger_path = tmp_path / "sweep.jsonl"
    specs = [RunSpec.make(FLAKY, 0, marker_dir=str(marker_dir)),
             RunSpec.make(CRASH_ONCE, 1, marker_dir=str(marker_dir))]
    grid = run_grid(specs, workers=1, retries=2, retry_backoff_s=0.05,
                    ledger=ledger_path, cache=RunCache.disabled())
    version = code_version()
    with open_ledger(ledger_path) as ledger:
        for result, spec in zip(grid.results, specs):
            entry = ledger.get(spec.key(version))
            assert entry is not None
            assert result.attempts == 2
            assert entry["attempts"] == result.attempts


def test_kill9_chaos_stays_byte_identical(tmp_path, monkeypatch):
    specs = [RunSpec.make(TOY, s) for s in range(6)]
    serial = run_grid(specs, jobs=1, cache=RunCache.disabled())
    monkeypatch.setenv(CHAOS_ENV, "kill-one")
    pooled = run_grid(specs, workers=2, retries=2, retry_backoff_s=0.05,
                      cache=RunCache.disabled())
    assert _metrics_bytes(serial) == _metrics_bytes(pooled)
    assert pooled.worker_stats.crashed == 1
    assert any(e["code"] == "WORKER_CRASH"
               for e in pooled.worker_stats.events)


# -- poison quarantine -------------------------------------------------------

def test_poison_cell_is_quarantined_despite_retries(tmp_path):
    specs = [RunSpec.make(CRASH, 0)] + \
        [RunSpec.make(TOY, s) for s in range(1, 4)]
    grid = run_grid(specs, workers=2, retries=10, retry_backoff_s=0.05,
                    poison_strikes=2, cache=RunCache.disabled(),
                    strict=False)
    assert len(grid.ok) == 3
    [failure] = grid.failures
    assert failure.error.startswith("poison:")
    # Quarantine preempts the retry budget: 2 strikes, not 11 attempts.
    assert failure.attempts == 2
    stats = grid.worker_stats
    assert stats.poisoned == 1
    assert any(e["code"] == "CELL_POISONED" for e in stats.events)


# -- heartbeat stall detection -----------------------------------------------

def test_stall_threshold_exactly_reached_is_not_a_stall():
    # The predicate is strict: the supervisor's wait horizon expires at
    # last_beat + stall_timeout, and waking up exactly then must not
    # condemn the worker it woke up to check.
    assert not stall_exceeded(last_beat=10.0, now=10.5, stall_timeout_s=0.5)
    assert not stall_exceeded(last_beat=10.0, now=10.0, stall_timeout_s=0.5)
    assert stall_exceeded(last_beat=10.0, now=10.53125, stall_timeout_s=0.5)


def test_busy_but_beating_worker_outlives_the_stall_timeout(tmp_path):
    # A cell that runs 3x longer than the stall timeout: the watchdog
    # keys on beat age, not busy time, so the daemon beater keeps the
    # worker alive through the whole cell.
    log = tmp_path / "ran.log"
    specs = [RunSpec.make(LOGGED, 0, log=str(log), delay=1.2)]
    results = {}
    stats = run_persistent(
        specs, [0], workers=1,
        on_result=lambda i, r: results.__setitem__(i, r),
        heartbeat_s=0.05, stall_timeout_s=0.4)
    assert stats.stalled == 0
    assert not results[0].failed


def test_beats_from_the_survivor_during_a_respawn_are_absorbed():
    # One worker stalls and is killed; while its replacement spawns,
    # the other worker keeps beating and finishing cells -- those
    # messages must land on the live handle, not the disposed one.
    specs = [RunSpec.make(SIGSTOP, 0)] + \
        [RunSpec.make(TOY, s) for s in range(1, 5)]
    results = {}
    stats = run_persistent(
        specs, [0, 1, 2, 3, 4], workers=2,
        on_result=lambda i, r: results.__setitem__(i, r),
        heartbeat_s=0.05, stall_timeout_s=0.4, poison_strikes=1)
    assert stats.stalled >= 1
    assert results[0].failed
    assert all(not results[i].failed for i in range(1, 5))


def test_stalled_worker_is_killed_and_replaced():
    specs = [RunSpec.make(SIGSTOP, 0), RunSpec.make(TOY, 1)]
    results = {}
    stats = run_persistent(
        specs, [0, 1], workers=1,
        on_result=lambda i, r: results.__setitem__(i, r),
        heartbeat_s=0.05, stall_timeout_s=0.4, poison_strikes=1)
    assert stats.stalled >= 1
    assert any(e["code"] == "WORKER_HEARTBEAT_LOST" for e in stats.events)
    assert results[0].failed
    assert results[0].error.startswith("poison:")
    assert not results[1].failed


# -- dirty-state guard -------------------------------------------------------

def test_state_guard_detects_environment_drift(monkeypatch):
    guard = WorkerStateGuard()
    assert guard.check() == []
    monkeypatch.setenv("REPRO_TEST_DIRT", "x")
    assert guard.check() == ["environ changed"]


def test_dirty_worker_is_replaced_without_charging_the_cell():
    specs = [RunSpec.make(DIRTY, 0),
             RunSpec.make(TOY, 1), RunSpec.make(TOY, 2)]
    grid = run_grid(specs, workers=1, cache=RunCache.disabled())
    assert len(grid.ok) == 3
    # The refused cell never executed on the dirty worker: one attempt.
    assert all(r.attempts == 1 for r in grid.results)
    stats = grid.worker_stats
    assert stats.dirty >= 1
    assert stats.spawned >= 2  # the contaminated worker was replaced
    assert any(e["code"] == "WORKER_STATE_DIRTY" for e in stats.events)


# -- graceful degradation ----------------------------------------------------

def test_degrades_to_serial_when_respawn_budget_exhausted():
    specs = [RunSpec.make(CRASH, 0),
             RunSpec.make(TOY, 1), RunSpec.make(TOY, 2)]
    results = {}
    # retries>0 keeps the killer cell pending when the pool dies, so
    # degradation has to decide what to do with a struck cell.
    stats = run_persistent(
        specs, [0, 1, 2], workers=1,
        on_result=lambda i, r: results.__setitem__(i, r),
        retries=2, retry_backoff_s=0.05, max_respawns=0)
    assert stats.degraded_to_serial
    assert any(e["code"] == "WORKER_POOL_DEGRADED" for e in stats.events)
    # The worker-killing cell is failed, not re-run in the supervisor.
    assert results[0].failed
    assert "not re-run in the supervisor" in results[0].error
    assert not results[1].failed and not results[2].failed


# -- ledger unit behaviour ---------------------------------------------------

def test_ledger_roundtrip_and_replay(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with open_ledger(path) as ledger:
        ledger.record_done("k1", {"fn": "f", "seed": 1, "params": {}},
                           {"metrics": {"b": 2, "a": 1}}, attempts=1)
        ledger.record_failed("k2", {"fn": "f", "seed": 2, "params": {}},
                             "poison: boom", attempts=3, poison=True)
        ledger.record_event({"code": "WORKER_CRASH"})
    with open_ledger(path) as ledger:
        entry = ledger.get("k1")
        assert entry["attempts"] == 1
        assert entry["format"] == LEDGER_FORMAT
        # Key order of the replayed record is preserved verbatim.
        assert list(entry["record"]["metrics"]) == ["b", "a"]
        assert ledger.get("k2") is None  # failures are never recalled
        assert ledger.failed["k2"]["poison"] is True


def test_ledger_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with open_ledger(path) as ledger:
        ledger.record_done("k1", {}, {"metrics": {}})
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"kind": "done", "key": "k2", "rec')  # power cut
    with open_ledger(path) as ledger:
        assert ledger.get("k1") is not None
        assert ledger.get("k2") is None
        ledger.record_done("k3", {}, {"metrics": {}})  # still appendable
    with open_ledger(path) as ledger:
        assert ledger.get("k3") is not None


def test_ledger_rotation_compacts_superseded_entries(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with open_ledger(path) as ledger:
        ledger.record_done("k1", {}, {"metrics": {"v": 1}})
        ledger.record_done("k1", {}, {"metrics": {"v": 2}})
        ledger.record_event({"code": "WORKER_CRASH"})
        assert ledger.superseded >= 1
        ledger.rotate()
        assert ledger.superseded == 0
    lines = path.read_text().splitlines()
    assert len(lines) == 1  # one live entry; event + stale line dropped
    with open_ledger(path) as ledger:
        assert ledger.get("k1")["record"]["metrics"]["v"] == 2


def test_ledger_resume_skips_completed_cells_without_cache(tmp_path):
    log = tmp_path / "ran.log"
    log.touch()
    ledger_path = tmp_path / "sweep.jsonl"
    specs = [RunSpec.make(LOGGED, s, log=str(log)) for s in range(4)]
    first = run_grid(specs, workers=2, ledger=ledger_path,
                     cache=RunCache.disabled())
    assert sorted(log.read_text().split()) == ["0", "1", "2", "3"]

    log.write_text("")  # reset the execution log
    resumed = run_grid(specs, workers=2, ledger=ledger_path,
                       cache=RunCache.disabled())
    assert log.read_text() == ""  # zero cells re-executed
    assert _metrics_bytes(first) == _metrics_bytes(resumed)
    assert all(r.cached for r in resumed.results)


# -- SIGTERM mid-sweep, resume at exactly the missing cells ------------------

def test_sigterm_resume_executes_exactly_missing_cells(tmp_path):
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    log = tmp_path / "ran.log"
    log.touch()
    ledger_path = tmp_path / "sweep.jsonl"

    script = (
        "import sys\n"
        "from repro.experiments.runner import RunCache, RunSpec, run_grid\n"
        "ledger, log, marker_dir = sys.argv[1:4]\n"
        "specs = [RunSpec.make('tests.test_workers:sigterm_once_cell', 0,\n"
        "                      marker_dir=marker_dir)]\n"
        "specs += [RunSpec.make('tests.test_workers:logged_cell', s,\n"
        "                       log=log, delay=0.15) for s in range(1, 7)]\n"
        "run_grid(specs, workers=2, ledger=ledger,\n"
        "         cache=RunCache.disabled(), strict=False)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT}"
    proc = subprocess.run(
        [sys.executable, "-c", script, str(ledger_path), str(log),
         str(marker_dir)],
        cwd=str(REPO_ROOT), env=env, capture_output=True, text=True,
        timeout=60)
    assert proc.returncode == -signal.SIGTERM, proc.stderr

    # What the interrupted sweep durably acknowledged:
    version = code_version()
    specs = [RunSpec.make(KILLER, 0, marker_dir=str(marker_dir))]
    specs += [RunSpec.make(LOGGED, s, log=str(log), delay=0.15)
              for s in range(1, 7)]
    with open_ledger(ledger_path) as ledger:
        done = {i for i, spec in enumerate(specs)
                if ledger.get(spec.key(version)) is not None}
    assert 0 not in done  # the killer never completed
    missing = set(range(len(specs))) - done

    log.write_text("")
    resumed = run_grid(specs, workers=2, ledger=ledger_path,
                       cache=RunCache.disabled())
    ran = {int(s) for s in log.read_text().split()}
    assert ran == missing - {0}  # logged cells: exactly the missing ones
    assert len(resumed.ok) == len(specs)
    assert all(resumed.results[i].cached for i in done)

    # Byte-identical to an uninterrupted serial sweep of the same cells.
    marker2 = tmp_path / "markers2"
    marker2.mkdir()
    (marker2 / "sigterm").touch()  # defuse the killer
    log2 = tmp_path / "ran2.log"
    serial_specs = [RunSpec.make(KILLER, 0, marker_dir=str(marker2))]
    serial_specs += [RunSpec.make(LOGGED, s, log=str(log2), delay=0.15)
                     for s in range(1, 7)]
    serial = run_grid(serial_specs, jobs=1, cache=RunCache.disabled())
    assert _metrics_bytes(resumed) == _metrics_bytes(serial)


# -- RunCache concurrent writers ---------------------------------------------

def test_cache_put_survives_concurrent_writers(tmp_path):
    cache = RunCache(root=tmp_path / "cache")
    key = "ab" + "0" * 62
    records = [{"metrics": {"value": n}, "writer": n} for n in range(8)]
    barrier = threading.Barrier(len(records))
    errors = []

    def hammer(record):
        barrier.wait()
        try:
            for _ in range(50):
                cache.put(key, record)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(r,)) for r in records]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Whatever order the replaces landed in, the slot holds one complete
    # record, not an interleaving of two writers.
    final = cache.get(key)
    assert final in records
    # Every temp file was published or cleaned up -- none leak.
    assert not list((tmp_path / "cache").rglob("*.tmp"))


def test_cache_put_temp_names_are_unique_per_write(tmp_path):
    """The regression shape: two writers racing on one pid-named temp
    file interleave their bytes.  Temp names must differ per write even
    within one process."""
    cache = RunCache(root=tmp_path / "cache")
    key = "cd" + "0" * 62
    seen = set()
    original_open = Path.open

    def spying_open(self, *args, **kwargs):
        if self.suffix == ".tmp":
            seen.add(self.name)
        return original_open(self, *args, **kwargs)

    try:
        Path.open = spying_open
        cache.put(key, {"metrics": {"v": 1}})
        cache.put(key, {"metrics": {"v": 2}})
    finally:
        Path.open = original_open
    assert len(seen) == 2


# -- WorkerStats -------------------------------------------------------------

def test_worker_stats_merge_and_line():
    a = WorkerStats(spawned=2, crashed=1, events=[{"code": "WORKER_CRASH"}])
    b = WorkerStats(spawned=1, respawned=1, poisoned=1,
                    degraded_to_serial=True)
    a.merge(b)
    assert a.spawned == 3 and a.respawned == 1 and a.crashed == 1
    assert a.degraded_to_serial
    line = a.line()
    assert line.startswith("workers: 3 spawned")
    assert "poisoned" in line and "degraded to serial" in line
